// Chaos soak: every architecture model completes a workload under combined
// drop/duplicate/jitter fault injection with NACKing homes, stays under the
// forward-progress watchdog, passes the post-run coherence invariant sweep,
// and produces bit-identical statistics when re-run with the same seed.

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "fault/invariants.hh"
#include "obs/sink.hh"
#include "workload/synthetic.hh"

namespace ascoma {
namespace {

workload::SyntheticWorkload chaos_workload() {
  workload::SyntheticParams p;
  p.name = "chaos";
  p.nodes = 4;
  p.home_pages = 24;
  p.remote_pages = 32;
  p.iterations = 2;
  p.loads_per_page = 4;
  p.write_fraction = 0.25;
  return workload::SyntheticWorkload(p);
}

MachineConfig chaos_config(ArchModel arch) {
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = 0.6;
  cfg.seed = 2024;
  cfg.fault_drop = 0.01;
  cfg.fault_dup = 0.01;
  cfg.fault_jitter = 0.05;
  cfg.nack_busy_cycles = Cycle{400};
  // Generous bound: trips only on a genuine livelock, not on slow progress.
  cfg.watchdog_cycles = Cycle{20'000'000};
  cfg.check_invariants = true;  // shadow checks + post-run sweep
  return cfg;
}

constexpr ArchModel kAllArchs[] = {ArchModel::kCcNuma, ArchModel::kScoma,
                                   ArchModel::kRNuma, ArchModel::kVcNuma,
                                   ArchModel::kAsComa};

TEST(ChaosSoak, EveryArchitectureSurvivesFaultInjection) {
  const auto wl = chaos_workload();
  for (ArchModel arch : kAllArchs) {
    SCOPED_TRACE(to_string(arch));
    const core::RunResult r = core::simulate(chaos_config(arch), wl);
    EXPECT_GT(r.cycles(), Cycle{0});
    EXPECT_GT(r.faults_injected, 0u);  // the chaos actually happened
    EXPECT_TRUE(r.invariants_checked);
  }
}

TEST(ChaosSoak, SameSeedRunsAreBitIdentical) {
  const auto wl = chaos_workload();
  for (ArchModel arch : kAllArchs) {
    SCOPED_TRACE(to_string(arch));
    const core::RunResult a = core::simulate(chaos_config(arch), wl);
    const core::RunResult b = core::simulate(chaos_config(arch), wl);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.net_retries, b.net_retries);
    EXPECT_EQ(a.net_retransmits, b.net_retransmits);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.net_messages, b.net_messages);
    EXPECT_EQ(a.stats.totals.misses.total(), b.stats.totals.misses.total());
    EXPECT_EQ(a.stats.totals.time.total(), b.stats.totals.time.total());
    EXPECT_EQ(a.stats.totals.kernel.page_faults,
              b.stats.totals.kernel.page_faults);
  }
}

TEST(ChaosSoak, DifferentFaultSeedsDivergeWithoutBreaking) {
  const auto wl = chaos_workload();
  MachineConfig a_cfg = chaos_config(ArchModel::kAsComa);
  MachineConfig b_cfg = a_cfg;
  b_cfg.fault_seed = 0xBADCAFE;
  const core::RunResult a = core::simulate(a_cfg, wl);
  const core::RunResult b = core::simulate(b_cfg, wl);
  // Both complete and validate; the fault pattern (and thus timing) differs.
  EXPECT_TRUE(a.invariants_checked);
  EXPECT_TRUE(b.invariants_checked);
  EXPECT_NE(a.cycles(), b.cycles());
}

TEST(ChaosSoak, ZeroFaultConfigMatchesAPlainRun) {
  const auto wl = chaos_workload();
  MachineConfig plain;
  plain.arch = ArchModel::kAsComa;
  plain.memory_pressure = 0.6;
  plain.seed = 2024;

  MachineConfig hardened = plain;
  hardened.watchdog_cycles = Cycle{20'000'000};  // armed but never tripping
  hardened.nack_busy_cycles = Cycle{0};          // NACKs disabled

  const core::RunResult a = core::simulate(plain, wl);
  const core::RunResult b = core::simulate(hardened, wl);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.stats.totals.time.total(), b.stats.totals.time.total());
  EXPECT_EQ(b.faults_injected, 0u);
  EXPECT_EQ(b.net_retries, 0u);
  EXPECT_EQ(b.nacks, 0u);
}

TEST(ChaosSoak, RetryAndNackCountersReachTheRunStats) {
  const auto wl = chaos_workload();
  MachineConfig cfg = chaos_config(ArchModel::kAsComa);
  cfg.fault_drop = 0.05;  // push hard enough that retries must occur
  const core::RunResult r = core::simulate(cfg, wl);
  EXPECT_GT(r.net_retries + r.net_retransmits, 0u);
  EXPECT_EQ(r.stats.totals.kernel.net_retries, r.net_retries);
  EXPECT_EQ(r.stats.totals.kernel.nacks, r.nacks);
}

TEST(ChaosSoak, EventTraceRecordsTheChaos) {
  const auto wl = chaos_workload();
  obs::EventSink sink;
  MachineConfig cfg = chaos_config(ArchModel::kAsComa);
  cfg.fault_drop = 0.05;
  cfg.sink = &sink;
  const core::RunResult r = core::simulate(cfg, wl);
  EXPECT_EQ(sink.count(obs::EventKind::kFaultInjected), r.faults_injected);
  EXPECT_GT(sink.count(obs::EventKind::kRetry), 0u);
}

}  // namespace
}  // namespace ascoma
