// Chaos soak: every architecture model completes a workload under combined
// drop/duplicate/jitter fault injection with NACKing homes, stays under the
// forward-progress watchdog, passes the post-run coherence invariant sweep,
// and produces bit-identical statistics when re-run with the same seed —
// plus the served variant: a 4-thread fault-injected sweep scraped over
// real sockets while it runs (the CI TSan job runs this file).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/machine.hh"
#include "core/sweep.hh"
#include "fault/invariants.hh"
#include "obs/sink.hh"
#include "workload/synthetic.hh"

namespace ascoma {
namespace {

workload::SyntheticWorkload chaos_workload() {
  workload::SyntheticParams p;
  p.name = "chaos";
  p.nodes = 4;
  p.home_pages = 24;
  p.remote_pages = 32;
  p.iterations = 2;
  p.loads_per_page = 4;
  p.write_fraction = 0.25;
  return workload::SyntheticWorkload(p);
}

MachineConfig chaos_config(ArchModel arch) {
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = 0.6;
  cfg.seed = 2024;
  cfg.fault_drop = 0.01;
  cfg.fault_dup = 0.01;
  cfg.fault_jitter = 0.05;
  cfg.nack_busy_cycles = Cycle{400};
  // Generous bound: trips only on a genuine livelock, not on slow progress.
  cfg.watchdog_cycles = Cycle{20'000'000};
  cfg.check_invariants = true;  // shadow checks + post-run sweep
  return cfg;
}

constexpr ArchModel kAllArchs[] = {ArchModel::kCcNuma, ArchModel::kScoma,
                                   ArchModel::kRNuma, ArchModel::kVcNuma,
                                   ArchModel::kAsComa};

TEST(ChaosSoak, EveryArchitectureSurvivesFaultInjection) {
  const auto wl = chaos_workload();
  for (ArchModel arch : kAllArchs) {
    SCOPED_TRACE(to_string(arch));
    const core::RunResult r = core::simulate(chaos_config(arch), wl);
    EXPECT_GT(r.cycles(), Cycle{0});
    EXPECT_GT(r.faults_injected, 0u);  // the chaos actually happened
    EXPECT_TRUE(r.invariants_checked);
  }
}

TEST(ChaosSoak, SameSeedRunsAreBitIdentical) {
  const auto wl = chaos_workload();
  for (ArchModel arch : kAllArchs) {
    SCOPED_TRACE(to_string(arch));
    const core::RunResult a = core::simulate(chaos_config(arch), wl);
    const core::RunResult b = core::simulate(chaos_config(arch), wl);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.net_retries, b.net_retries);
    EXPECT_EQ(a.net_retransmits, b.net_retransmits);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.net_messages, b.net_messages);
    EXPECT_EQ(a.stats.totals.misses.total(), b.stats.totals.misses.total());
    EXPECT_EQ(a.stats.totals.time.total(), b.stats.totals.time.total());
    EXPECT_EQ(a.stats.totals.kernel.page_faults,
              b.stats.totals.kernel.page_faults);
  }
}

TEST(ChaosSoak, DifferentFaultSeedsDivergeWithoutBreaking) {
  const auto wl = chaos_workload();
  MachineConfig a_cfg = chaos_config(ArchModel::kAsComa);
  MachineConfig b_cfg = a_cfg;
  b_cfg.fault_seed = 0xBADCAFE;
  const core::RunResult a = core::simulate(a_cfg, wl);
  const core::RunResult b = core::simulate(b_cfg, wl);
  // Both complete and validate; the fault pattern (and thus timing) differs.
  EXPECT_TRUE(a.invariants_checked);
  EXPECT_TRUE(b.invariants_checked);
  EXPECT_NE(a.cycles(), b.cycles());
}

TEST(ChaosSoak, ZeroFaultConfigMatchesAPlainRun) {
  const auto wl = chaos_workload();
  MachineConfig plain;
  plain.arch = ArchModel::kAsComa;
  plain.memory_pressure = 0.6;
  plain.seed = 2024;

  MachineConfig hardened = plain;
  hardened.watchdog_cycles = Cycle{20'000'000};  // armed but never tripping
  hardened.nack_busy_cycles = Cycle{0};          // NACKs disabled

  const core::RunResult a = core::simulate(plain, wl);
  const core::RunResult b = core::simulate(hardened, wl);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.stats.totals.time.total(), b.stats.totals.time.total());
  EXPECT_EQ(b.faults_injected, 0u);
  EXPECT_EQ(b.net_retries, 0u);
  EXPECT_EQ(b.nacks, 0u);
}

TEST(ChaosSoak, RetryAndNackCountersReachTheRunStats) {
  const auto wl = chaos_workload();
  MachineConfig cfg = chaos_config(ArchModel::kAsComa);
  cfg.fault_drop = 0.05;  // push hard enough that retries must occur
  const core::RunResult r = core::simulate(cfg, wl);
  EXPECT_GT(r.net_retries + r.net_retransmits, 0u);
  EXPECT_EQ(r.stats.totals.kernel.net_retries, r.net_retries);
  EXPECT_EQ(r.stats.totals.kernel.nacks, r.nacks);
}

TEST(ChaosSoak, EventTraceRecordsTheChaos) {
  const auto wl = chaos_workload();
  obs::EventSink sink;
  MachineConfig cfg = chaos_config(ArchModel::kAsComa);
  cfg.fault_drop = 0.05;
  cfg.sink = &sink;
  const core::RunResult r = core::simulate(cfg, wl);
  EXPECT_EQ(sink.count(obs::EventKind::kFaultInjected), r.faults_injected);
  EXPECT_GT(sink.count(obs::EventKind::kRetry), 0u);
}

/// Minimal HTTP GET over a real socket (response until EOF; empty on any
/// failure) — just enough to hammer the plane from the scraper thread.
std::string scrape(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

// The whole cross-thread plane under chaos at once: a 4-worker sweep of
// every architecture with fault injection enabled, served on an ephemeral
// port, while a scraper thread hammers /metrics and /events for the entire
// run.  Exercises every lock in LOCK_HIERARCHY and every handshake the
// concurrency fence annotates, concurrently — the CI TSan job runs this.
TEST(ChaosSoak, ServedFaultSweepScrapesRaceFree) {
  std::vector<core::SweepJob> jobs;
  for (ArchModel arch : kAllArchs) {
    core::SweepJob j;
    j.config = chaos_config(arch);
    j.workload = "fft";
    j.workload_scale = 0.3;
    j.label = std::string("chaos-") + to_string(arch);
    jobs.push_back(j);
  }

  core::SweepOptions opts;
  opts.threads = 4;  // 5 faulty jobs on 4 workers: one worker runs two
  opts.serve_port = std::uint16_t{0};
  std::atomic<bool> done{false};
  std::thread scraper;
  std::atomic<std::size_t> scrapes{0};
  opts.serve_ready = [&](std::uint16_t port) {
    scraper = std::thread([&, port] {
      while (!done.load()) {
        if (!scrape(port, "/metrics").empty()) scrapes.fetch_add(1);
        if (!scrape(port, "/events?last=32").empty()) scrapes.fetch_add(1);
      }
    });
  };

  const std::vector<core::SweepResult> results = core::run_sweep(jobs, opts);
  done.store(true);
  ASSERT_TRUE(scraper.joinable());  // serve_ready must have fired
  scraper.join();

  EXPECT_GT(scrapes.load(), 0u);  // the plane was really being watched
  ASSERT_EQ(results.size(), jobs.size());
  for (const core::SweepResult& r : results) {
    EXPECT_GT(r.result.faults_injected, 0u) << r.job.label;
    EXPECT_TRUE(r.result.invariants_checked) << r.job.label;
    EXPECT_GT(r.accesses(), 0u) << r.job.label;
  }
}

}  // namespace
}  // namespace ascoma
