// Ablation: S-COMA-first initial allocation (contribution #1).
// Compares AS-COMA with S-COMA-preferred allocation against a variant that
// maps everything CC-NUMA-first (R-NUMA style) while keeping the back-off,
// at low memory pressure, where the paper attributes up to ~17% (radix) to
// accelerated convergence to S-COMA behaviour (Section 5.1).

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: initial allocation policy (AS-COMA) ===\n\n";

  BenchJson bj("ablation_alloc");
  Table t({"workload", "CC-NUMA cyc", "scoma-first rel.", "numa-first rel.",
           "benefit", "numa-first upgrades", "scoma-first upgrades"});
  for (const std::string app :
       {"radix", "lu", "barnes", "em3d", "fft", "ocean"}) {
    std::vector<core::SweepJob> jobs;
    auto add = [&](ArchModel arch, bool scoma_first, const char* label) {
      core::SweepJob j;
      j.config.arch = arch;
      j.config.memory_pressure = 0.10;  // paper: isolate at 10% pressure
      j.config.ascoma_scoma_first = scoma_first;
      j.label = label;
      j.workload = app;
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    };
    add(ArchModel::kCcNuma, true, "ccnuma");
    add(ArchModel::kAsComa, true, "scoma-first");
    add(ArchModel::kAsComa, false, "numa-first");
    const auto rs = core::run_sweep(jobs, bench_threads());
    bj.add(app, rs);
    const double cc = static_cast<double>(find(rs, "ccnuma").result.cycles().value());
    const auto& sf = find(rs, "scoma-first").result;
    const auto& nf = find(rs, "numa-first").result;
    const double sfr = static_cast<double>(sf.cycles().value()) / cc;
    const double nfr = static_cast<double>(nf.cycles().value()) / cc;
    t.add_row({app, Table::num(cc, 0), Table::num(sfr, 3), Table::num(nfr, 3),
               Table::pct((nfr - sfr) / nfr),
               std::to_string(nf.stats.totals.kernel.upgrades),
               std::to_string(sf.stats.totals.kernel.upgrades)});
  }
  t.print(std::cout);
  std::cout << "\nExpected (paper section 5.1): largest benefit for radix"
               " (many pages to remap),\nmodest for lu, negligible for fft"
               " and ocean.\n";
  return 0;
}
