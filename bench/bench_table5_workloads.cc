// Table 5 reproduction: programs and problem sizes — home pages per node,
// maximum remote pages accessed by any node, and the resulting "ideal
// pressure" below which S-COMA/AS-COMA never suffer a remote conflict miss.
// The remote working set is *measured* by running each program on CC-NUMA
// (whose behaviour does not depend on pressure) and reading the census.

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "workload/workload.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Table 5: programs and problem sizes ===\n\n";

  std::vector<core::SweepJob> jobs;
  for (const auto& name : workload::workload_names()) {
    core::SweepJob j;
    j.config.arch = ArchModel::kCcNuma;
    j.config.memory_pressure = 0.5;
    j.label = name;
    j.workload = name;
    j.workload_scale = bench_scale();
    jobs.push_back(std::move(j));
  }
  const auto rs = core::run_sweep(jobs, bench_threads());
  BenchJson bj("table5_workloads");
  for (const auto& r : rs) bj.add(r.job.workload, {r});

  Table t({"program", "nodes", "home pages/node", "max remote pages",
           "ideal pressure", "shared refs (M)", "barriers"});
  for (const auto& r : rs) {
    const auto& res = r.result;
    std::uint64_t max_remote = 0;
    for (const auto& n : res.per_node)
      max_remote = std::max(max_remote, n.remote_pages_touched);
    const double home =
        static_cast<double>(res.stats.home_pages_per_node);
    const double ideal = home / (home + static_cast<double>(max_remote));
    const double refs =
        static_cast<double>(res.stats.totals.shared_loads +
                            res.stats.totals.shared_stores) /
        1e6;
    t.add_row({r.job.label, std::to_string(res.stats.nodes),
               std::to_string(res.stats.home_pages_per_node),
               std::to_string(max_remote), Table::pct(ideal, 0),
               Table::num(refs, 2),
               std::to_string(res.barrier_episodes)});
  }
  t.print(std::cout);
  std::cout << "\nIdeal pressure = home / (home + max remote): below it every"
               " node can replicate\nits entire remote working set locally "
               "(paper Table 5, rightmost column).\n";
  return 0;
}
