// Table 4 reproduction: minimum access latency from each level of the
// global memory hierarchy, measured by probing the full coherent memory
// system (not just reading the config).  Built on google-benchmark: each
// benchmark measures host throughput of the simulated access path and
// reports the *simulated* latency as the `sim_cycles` counter — the value
// to compare against the paper's Table 4.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/config.hh"
#include "proto/coherent_memory.hh"
#include "vm/home_map.hh"
#include "vm/page_table.hh"

namespace {

using namespace ascoma;

struct Rig {
  Rig() : homes(64, 8) {
    homes.assign_contiguous();  // 8 pages per node
    for (NodeId n{0}; n.value() < 8; ++n) {
      pts.push_back(std::make_unique<vm::PageTable>(64));
      for (VPageId p{n.value() * 8ull}; p < VPageId{(n.value() + 1) * 8ull}; ++p)
      pts[n.value()]->map_home(p);
    }
    cm = std::make_unique<proto::CoherentMemory>(cfg, homes);
    std::vector<const vm::PageTable*> ptrs;
    for (auto& pt : pts) ptrs.push_back(pt.get());
    cm->set_page_tables(ptrs);
  }

  Addr addr(VPageId page, std::uint64_t line) const {
    return Addr{page.value() * cfg.page_bytes.value() +
                line * cfg.line_bytes.value()};
  }

  MachineConfig cfg;  // paper defaults: 8 nodes
  vm::HomeMap homes;
  std::vector<std::unique_ptr<vm::PageTable>> pts;
  std::unique_ptr<proto::CoherentMemory> cm;
};

void BM_L1Hit(benchmark::State& state) {
  Rig rig;
  rig.cm->access(0, rig.addr(VPageId{0}, 0), false, Cycle{0});
  Cycle now = Cycle{1000}, last = Cycle{0};
  for (auto _ : state) {
    const auto o = rig.cm->access(0, rig.addr(VPageId{0}, 0), false, now);
    last = o.done - now;
    now += Cycle{1000};
    benchmark::DoNotOptimize(o);
  }
  state.counters["sim_cycles"] = static_cast<double>(last.value());
  state.counters["paper_table4"] = 1;
}
BENCHMARK(BM_L1Hit);

void BM_LocalMemory(benchmark::State& state) {
  Rig rig;
  Cycle now = Cycle{0}, last = Cycle{0};
  std::uint64_t line = 0;
  for (auto _ : state) {
    // Rotate lines so every access is an L1 miss to the local home page but
    // never queues behind itself (gap >> DRAM time).
    rig.cm->l1(0).invalidate_line(rig.cfg.line_of(rig.addr(VPageId{0}, line % 128)));
    const auto o = rig.cm->access(0, rig.addr(VPageId{0}, line % 128), false, now);
    last = o.done - now;
    now += Cycle{10'000};
    ++line;
  }
  state.counters["sim_cycles"] = static_cast<double>(last.value());
  state.counters["paper_table4"] = 50;
}
BENCHMARK(BM_LocalMemory);

void BM_RacHit(benchmark::State& state) {
  Rig rig;
  rig.pts[0]->map_numa(VPageId{8});  // homed at node 1
  rig.cm->access(0, rig.addr(VPageId{8}, 0), false, Cycle{0});  // fill the RAC
  Cycle now = Cycle{10'000}, last = Cycle{0};
  for (auto _ : state) {
    rig.cm->l1(0).invalidate_line(rig.cfg.line_of(rig.addr(VPageId{8}, 1)));
    const auto o = rig.cm->access(0, rig.addr(VPageId{8}, 1), false, now);
    last = o.done - now;
    now += Cycle{10'000};
  }
  state.counters["sim_cycles"] = static_cast<double>(last.value());
  state.counters["paper_table4"] = 36;
}
BENCHMARK(BM_RacHit);

void BM_RemoteMemory(benchmark::State& state) {
  Rig rig;
  rig.pts[0]->map_numa(VPageId{8});
  Cycle now = Cycle{0}, last = Cycle{0};
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Each access targets a different block so it is a genuine remote fetch.
    const std::uint64_t line = (i * 4) % 128;
    rig.cm->l1(0).invalidate_line(rig.cfg.line_of(rig.addr(VPageId{8}, line)));
    rig.cm->rac(NodeId{0}).invalidate(rig.cfg.block_of(rig.addr(VPageId{8}, line)));
    const auto o = rig.cm->access(0, rig.addr(VPageId{8}, line), false, now);
    last = o.done - now;
    now += Cycle{10'000};
    ++i;
  }
  state.counters["sim_cycles"] = static_cast<double>(last.value());
  state.counters["paper_table4"] = 150;
}
BENCHMARK(BM_RemoteMemory);

void BM_RemoteToLocalRatio(benchmark::State& state) {
  MachineConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg.min_remote_latency());
  }
  state.counters["ratio"] =
      static_cast<double>(cfg.min_remote_latency().value()) /
      static_cast<double>(cfg.min_local_latency().value());
}
BENCHMARK(BM_RemoteToLocalRatio);

}  // namespace

BENCHMARK_MAIN();
