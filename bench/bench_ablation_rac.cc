// Ablation: the remote access cache.  The paper notes the minimal 128 B RAC
// "had a larger impact on performance than we had anticipated" for fft's
// sequential remote streaming.  This bench removes and grows the RAC on fft
// and radix (which, having no spatial locality, should not care).

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: RAC size (CC-NUMA) ===\n\n";

  BenchJson bj("ablation_rac");
  for (const std::string app : {"fft", "radix"}) {
    std::vector<core::SweepJob> jobs;
    for (std::uint32_t rac_bytes : {0u, 128u, 512u, 4096u, 32768u}) {
      core::SweepJob j;
      j.config.arch = ArchModel::kCcNuma;
      j.config.memory_pressure = 0.5;
      j.config.rac_bytes = ByteCount{rac_bytes};
      j.label = "RAC=" + std::to_string(rac_bytes) + "B";
      j.workload = app;
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
    const auto rs = core::run_sweep(jobs, bench_threads());
    bj.add(app, rs);
    const double base = static_cast<double>(find(rs, "RAC=128B").result.cycles().value());

    Table t({"config", "cycles", "rel. to 128B", "RAC hits",
             "remote fetches"});
    for (const auto& r : rs) {
      const auto& m = r.result.stats.totals.misses;
      t.add_row({r.job.label, std::to_string(r.result.cycles().value()),
                 Table::num(static_cast<double>(r.result.cycles().value()) / base, 3),
                 std::to_string(m[MissSource::kRac]),
                 std::to_string(m.remote())});
    }
    std::cout << "-- " << app << " --\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected: removing the RAC hurts fft badly (sequential 4-line"
               " chunks) and radix\nbarely at all (no spatial locality);"
               " growing it has diminishing returns.\n";
  return 0;
}
