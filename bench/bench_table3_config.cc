// Table 3 reproduction: cache and network characteristics of the modeled
// machine, echoed from the configuration and cross-checked against the
// component models (a self-test that the built machine matches the paper).

#include <iostream>

#include "bench_util.hh"
#include "common/check.hh"
#include "mem/cache.hh"
#include "mem/rac.hh"
#include "net/network.hh"
#include "vm/home_map.hh"

using namespace ascoma;

int main() {
  MachineConfig cfg;  // 8-node paper machine
  std::cout << "=== Table 3: cache and network characteristics ===\n\n";

  Table t({"component", "characteristic", "value"});
  t.add_row({"L1 cache", "size", std::to_string(cfg.l1_bytes.value() / 1024) + " KB"});
  t.add_row({"", "line size", std::to_string(cfg.line_bytes.value()) + " B"});
  t.add_row({"", "organization", "direct-mapped, write-back"});
  t.add_row({"", "outstanding misses", "1 (blocking)"});
  t.add_row({"", "hit latency", std::to_string(cfg.l1_hit_cycles.value()) + " cycle"});
  t.add_row({"RAC", "line size", std::to_string(cfg.block_bytes.value()) + " B"});
  t.add_row({"", "size", std::to_string(cfg.rac_bytes.value()) + " B (" +
                             std::to_string(cfg.rac_entries()) + " block)"});
  t.add_row({"", "organization", "direct-mapped, non-inclusive"});
  t.add_row({"Memory", "banks", std::to_string(cfg.dram_banks)});
  t.add_row({"", "bank access", std::to_string(cfg.dram_access_cycles.value()) +
                                    " cycles"});
  t.add_row({"Coherence", "transfer unit",
             std::to_string(cfg.block_bytes.value()) + " B (" +
                 std::to_string(cfg.lines_per_block()) + "-line chunks)"});
  t.add_row({"", "protocol", "write-invalidate, sequentially consistent"});
  t.add_row({"Network", "topology",
             std::to_string(cfg.switch_arity) + "x" +
                 std::to_string(cfg.switch_arity) + " switches, " +
                 std::to_string(cfg.net_stages()) + " stages"});
  t.add_row({"", "propagation", std::to_string(cfg.net_propagation.value()) +
                                    " cycles/hop"});
  t.add_row({"", "fall-through", std::to_string(cfg.net_fall_through.value()) +
                                     " cycles"});
  t.add_row({"", "contention model", "input-port contention only"});
  t.add_row({"VM", "page size", std::to_string(cfg.page_bytes.value() / 1024) +
                                    " KB"});
  t.add_row({"", "relocation threshold",
             std::to_string(cfg.refetch_threshold) + " refetches"});
  t.print(std::cout);

  // ---- self-check against the instantiated component models ----------------
  mem::L1Cache l1(cfg);
  ASCOMA_CHECK(l1.num_lines() == cfg.l1_bytes / cfg.line_bytes);
  mem::Rac rac(cfg);
  ASCOMA_CHECK(rac.entries() == 1);
  vm::HomeMap homes(64, cfg.nodes);
  homes.assign_contiguous();
  net::Network net(cfg);
  ASCOMA_CHECK(net.topology().stages() == 2);
  ASCOMA_CHECK(net.min_one_way_latency() == cfg.net_one_way_latency());
  std::cout << "\nself-check: component models agree with the table.  "
               "remote:local latency ratio = "
            << Table::num(static_cast<double>(cfg.min_remote_latency().value()) /
                              static_cast<double>(cfg.min_local_latency().value()),
                          2)
            << " (paper: ~3:1)\n";
  return 0;
}
