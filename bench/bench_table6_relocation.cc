// Table 6 reproduction: number of remote pages ever accessed versus pages
// refetched often enough to qualify for relocation (refetch count >= the
// initial threshold of 64).  Measured at 50% memory pressure on CC-NUMA, as
// in the paper ("no page remappings beyond any initial ones will occur"),
// so the counters census the program's intrinsic behaviour.

#include <iostream>

#include "bench_util.hh"
#include "workload/workload.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Table 6: remote pages accessed vs conflicted frequently"
               " ===\n\n";

  std::vector<core::SweepJob> jobs;
  for (const auto& name : workload::workload_names()) {
    core::SweepJob j;
    j.config.arch = ArchModel::kCcNuma;  // counts without remapping effects
    j.config.memory_pressure = 0.5;
    j.label = name;
    j.workload = name;
    j.workload_scale = bench_scale();
    jobs.push_back(std::move(j));
  }
  const auto rs = core::run_sweep(jobs, bench_threads());
  BenchJson bj("table6_relocation");
  for (const auto& r : rs) bj.add(r.job.workload, {r});

  Table t({"program", "total remote pages", "relocated pages",
           "% of relocated pages"});
  for (const auto& r : rs) {
    const std::uint64_t total = r.result.remote_page_node_pairs;
    const std::uint64_t hot = r.result.relocated_pairs;
    t.add_row({r.job.label, std::to_string(total), std::to_string(hot),
               Table::pct(total ? static_cast<double>(hot) /
                                      static_cast<double>(total)
                                : 0.0)});
  }
  t.print(std::cout);
  std::cout << "\nCounts are (page, node) pairs summed over nodes, as in the"
               " paper (a page remote\nto several nodes is counted once per"
               " accessing node).  Threshold = 64 refetches.\n"
               "Expected shape: fft ~0%, ocean/barnes/em3d moderate-to-high,"
               " lu and radix highest.\n";
  return 0;
}
