// Ablation: L1 cache size.  The paper models a deliberately small 16 KB
// direct-mapped L1 "to compensate for the small size of the data sets" —
// conflict/capacity misses to remote data are precisely what the page cache
// converts into local misses.  Growing the L1 shrinks that miss stream and
// with it the hybrids' advantage; this sweep quantifies the sensitivity.

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: L1 size (barnes @50%) ===\n\n";

  BenchJson bj("ablation_l1");
  Table t({"L1", "CCNUMA cyc", "CCNUMA remote misses", "ASCOMA rel.",
           "ASCOMA local miss %"});
  for (std::uint32_t kb : {8u, 16u, 128u, 1024u, 4096u}) {
    std::vector<core::SweepJob> jobs;
    for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kAsComa}) {
      core::SweepJob j;
      j.config.arch = arch;
      j.config.l1_bytes = ByteCount{kb * 1024ull};
      j.config.memory_pressure = 0.5;
      j.label = to_string(arch);
      j.workload = "barnes";
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
    const auto rs = core::run_sweep(jobs, bench_threads());
    bj.add("barnes/L1=" + std::to_string(kb) + "KB", rs);
    const auto& cc = find(rs, "CCNUMA").result;
    const auto& as = find(rs, "ASCOMA").result;
    const auto& m = as.stats.totals.misses;
    t.add_row({std::to_string(kb) + "KB", std::to_string(cc.cycles().value()),
               std::to_string(cc.stats.totals.misses.remote()),
               Table::num(static_cast<double>(as.cycles().value()) /
                              static_cast<double>(cc.cycles().value()),
                          3),
               Table::pct(m.total() ? static_cast<double>(m.local()) /
                                          static_cast<double>(m.total())
                                    : 0.0)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: growing the L1 slowly absorbs the remote working"
               " set and narrows the\nhybrid's advantage — but only slowly:"
               " with a direct-mapped cache, page-level\naliasing keeps"
               " purging remote data (the paper's point that \"data access"
               " patterns\nand cache organization cause cached remote data to"
               " be purged frequently\").\n";
  return 0;
}
