// Ablation: kernel software costs.  The paper's central methodological
// point is that "previous studies have tended to ignore the impact of
// software overhead ... but our findings indicate that the effect of this
// factor can be dramatic."  This sweep scales the kernel cost parameters
// (interrupt delivery, remap, per-line flush, daemon work) by 0.5-4x on
// em3d at 90% pressure: R-NUMA — which pays these costs on every upgrade —
// degrades in proportion, while AS-COMA's back-off caps its exposure.

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: kernel software cost scale (em3d @90%) ===\n\n";

  BenchJson bj("ablation_kernel_costs");
  Table t({"kernel cost x", "CCNUMA cyc", "SCOMA rel.", "RNUMA rel.",
           "ASCOMA rel.", "RNUMA K-OVERHD%", "ASCOMA K-OVERHD%"});
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    std::vector<core::SweepJob> jobs;
    for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kScoma,
                           ArchModel::kRNuma, ArchModel::kAsComa}) {
      core::SweepJob j;
      j.config.arch = arch;
      j.config.memory_pressure = 0.9;
      auto scaled = [&](Cycle c) {
        return Cycle{static_cast<Cycle::rep>(static_cast<double>(c.value()) * scale)};
      };
      j.config.cost_interrupt = scaled(j.config.cost_interrupt);
      j.config.cost_remap = scaled(j.config.cost_remap);
      j.config.cost_flush_line = scaled(j.config.cost_flush_line);
      j.config.cost_daemon_wakeup = scaled(j.config.cost_daemon_wakeup);
      j.config.cost_daemon_scan_page = scaled(j.config.cost_daemon_scan_page);
      j.label = to_string(arch);
      j.workload = "em3d";
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
    const auto rs = core::run_sweep(jobs, bench_threads());
    bj.add("em3d/kcost=" + Table::num(scale, 1), rs);
    const double cc = static_cast<double>(find(rs, "CCNUMA").result.cycles().value());
    auto rel = [&](const char* label) {
      return Table::num(
          static_cast<double>(find(rs, label).result.cycles().value()) / cc, 3);
    };
    auto kovhd = [&](const char* label) {
      return Table::pct(find(rs, label).result.stats.totals.time.frac(
          TimeBucket::kKernelOvhd));
    };
    t.add_row({Table::num(scale, 1),
               std::to_string(find(rs, "CCNUMA").result.cycles().value()),
               rel("SCOMA"), rel("RNUMA"), rel("ASCOMA"), kovhd("RNUMA"),
               kovhd("ASCOMA")});
  }
  t.print(std::cout);
  std::cout << "\nExpected: S-COMA's and R-NUMA's degradation scales with the"
               " kernel costs the paper\nsays prior studies ignored, while"
               " AS-COMA's back-off keeps its exposure roughly flat.\n";
  return 0;
}
