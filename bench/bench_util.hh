#pragma once

// Shared plumbing for the paper-reproduction benchmark binaries: the exact
// (architecture x pressure) bar sets each figure shows, paper-style table
// printers for the execution-time breakdown (Figs 2/3 left) and the miss
// satisfaction breakdown (Figs 2/3 right), and environment knobs:
//
//   ASCOMA_BENCH_SCALE    workload iteration scale (default 1.0)
//   ASCOMA_BENCH_THREADS  sweep parallelism (default: hardware)
//   ASCOMA_BENCH_CSV      append sweep results as CSV rows to this file
//   ASCOMA_BENCH_JSON_DIR directory for BENCH_<name>.json (default: cwd)
//   ASCOMA_BENCH_JSON=0   disable the BENCH_<name>.json dump

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "core/sweep.hh"
#include "obs/export.hh"
#include "report/report.hh"
#include "selfprof/simspeed.hh"

namespace ascoma::bench {

inline double bench_scale() {
  if (const char* s = std::getenv("ASCOMA_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline unsigned bench_threads() {
  if (const char* s = std::getenv("ASCOMA_BENCH_THREADS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;  // hardware concurrency
}

/// When ASCOMA_BENCH_CSV is set, append every sweep result as CSV rows to
/// that file (header written once per file) — plotting-friendly output
/// alongside the human-readable tables.
inline void maybe_export_csv(const std::string& workload,
                             const std::vector<core::SweepResult>& rs) {
  const char* path = std::getenv("ASCOMA_BENCH_CSV");
  if (!path || !*path) return;
  const bool fresh = !std::ifstream(path).good();
  std::ofstream csv(path, std::ios::app);
  if (!csv) return;
  if (fresh) csv << report::csv_header_walltime() << '\n';
  for (const auto& r : rs)
    csv << report::csv_row(workload, to_string(r.job.config.arch), r) << '\n';
}

/// Accumulates sweep results and writes `BENCH_<name>.json` on destruction —
/// the machine-readable perf baseline CI archives next to profile dumps.
/// Integer cycle counts only, so dumps are byte-stable across platforms.
/// ASCOMA_BENCH_JSON_DIR redirects the output directory (default: cwd);
/// ASCOMA_BENCH_JSON=0 disables the dump entirely.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void add(const std::string& workload,
           const std::vector<core::SweepResult>& rs) {
    for (const auto& r : rs) {
      const auto& tot = r.result.stats.totals;
      std::string row = "{\"label\":\"" + obs::json_escape(r.job.label) +
                        "\",\"workload\":\"" + obs::json_escape(workload) +
                        "\",\"arch\":\"" +
                        obs::json_escape(to_string(r.job.config.arch)) +
                        "\",\"pressure_pct\":" +
                        std::to_string(static_cast<int>(
                            r.job.config.memory_pressure * 100.0 + 0.5)) +
                        ",\"cycles\":" + std::to_string(r.result.cycles().value());
      static constexpr std::pair<TimeBucket, const char*> kBuckets[] = {
          {TimeBucket::kUserInstr, "u_instr"},
          {TimeBucket::kUserLocal, "u_lc_mem"},
          {TimeBucket::kUserShared, "ush_mem"},
          {TimeBucket::kKernelBase, "k_base"},
          {TimeBucket::kKernelOvhd, "k_overhd"},
          {TimeBucket::kSync, "sync"},
      };
      for (const auto& [b, name] : kBuckets)
        row += ",\"" + std::string(name) +
               "\":" + std::to_string(tot.time[b].value());
      // Same tokens as report::csv_header() so both exports join trivially.
      static constexpr const char* kMissNames[kNumMissSources] = {
          "home", "scoma", "rac", "cold", "conf_capc", "coherence"};
      for (int s = 0; s < kNumMissSources; ++s)
        row += ",\"miss_" + std::string(kMissNames[s]) + "\":" +
               std::to_string(tot.misses[static_cast<MissSource>(s)]);
      row += ",\"upgrades\":" + std::to_string(tot.kernel.upgrades) +
             ",\"downgrades\":" + std::to_string(tot.kernel.downgrades) +
             ",\"suppressed\":" + std::to_string(tot.kernel.remap_suppressed) +
             "}";
      rows_.push_back(std::move(row));

      // Sim-rate telemetry rides along: one BENCH_simspeed.json row per
      // sweep job (simulated work, host wall time, RSS, allocations).
      selfprof::SimspeedRow sp;
      sp.label = r.job.label;
      sp.workload = workload;
      sp.arch = to_string(r.job.config.arch);
      sp.cycles = r.result.cycles().value();
      sp.accesses = r.accesses();
      sp.wall_ns = r.timing.wall.value();
      sp.peak_rss_bytes = r.timing.peak_rss_bytes;
      sp.allocs = r.timing.allocs;
      sp.store_ns = r.timing.store.value();
      sp.serve_ns = r.timing.serve.value();
      simspeed_.rows.push_back(std::move(sp));
    }
  }

  ~BenchJson() {
    if (const char* flag = std::getenv("ASCOMA_BENCH_JSON"))
      if (std::string(flag) == "0") return;
    std::string dir = ".";
    if (const char* d = std::getenv("ASCOMA_BENCH_JSON_DIR"))
      if (*d) dir = d;
    std::ofstream os(dir + "/BENCH_" + name_ + ".json", std::ios::trunc);
    if (!os) return;
    os << "{\"schema\":\"ascoma.bench/1\",\"bench\":\""
       << obs::json_escape(name_) << "\",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      os << (i ? ",\n" : "\n") << rows_[i];
    os << "\n]}\n";
    // The simspeed document is written per process (last bench binary into a
    // shared dir wins) — ascoma_simspeed_diff joins rows by
    // (label, workload, arch), and CI runs exactly one smoke bench.
    simspeed_.bench = name_;
    std::ofstream ss(dir + "/BENCH_simspeed.json", std::ios::trunc);
    if (!ss) return;
    selfprof::write_simspeed(ss, simspeed_);
  }

 private:
  std::string name_;
  std::vector<std::string> rows_;
  selfprof::SimspeedDoc simspeed_;
};

/// The bar sets shown in Figures 2 and 3, per application.  S-COMA is only
/// shown at pressures where the paper ran it (it collapses beyond); barnes
/// was only simulated to 50% because its free-page pool is tiny beyond that.
inline std::vector<core::SweepJob> figure_jobs(const std::string& app,
                                               const MachineConfig& base = {},
                                               double scale = 0.0) {
  if (scale <= 0.0) scale = bench_scale();
  std::map<ArchModel, std::vector<int>> grid;
  if (app == "barnes") {
    grid[ArchModel::kScoma] = {10, 30, 50};
    for (ArchModel a :
         {ArchModel::kAsComa, ArchModel::kVcNuma, ArchModel::kRNuma})
      grid[a] = {10, 50, 70};
  } else if (app == "radix") {
    grid[ArchModel::kScoma] = {10, 30};
    for (ArchModel a :
         {ArchModel::kAsComa, ArchModel::kVcNuma, ArchModel::kRNuma})
      grid[a] = {10, 70, 90};
  } else if (app == "em3d") {
    grid[ArchModel::kScoma] = {10, 70};
    for (ArchModel a :
         {ArchModel::kAsComa, ArchModel::kVcNuma, ArchModel::kRNuma})
      grid[a] = {10, 70, 90};
  } else {  // fft, lu, ocean
    grid[ArchModel::kScoma] = {10, 70, 90};
    for (ArchModel a :
         {ArchModel::kAsComa, ArchModel::kVcNuma, ArchModel::kRNuma})
      grid[a] = {10, 70, 90};
  }

  std::vector<core::SweepJob> jobs;
  auto add = [&](ArchModel arch, int pct) {
    core::SweepJob j;
    j.config = base;
    j.config.arch = arch;
    j.config.memory_pressure = pct / 100.0;
    j.label = std::string(to_string(arch)) + "(" + std::to_string(pct) + "%)";
    j.workload = app;
    j.workload_scale = scale;
    jobs.push_back(std::move(j));
  };
  add(ArchModel::kCcNuma, 50);
  for (ArchModel a : {ArchModel::kScoma, ArchModel::kAsComa,
                      ArchModel::kVcNuma, ArchModel::kRNuma})
    for (int pct : grid[a]) add(a, pct);
  return jobs;
}

/// Adapt sweep results to the report library's labeled view.
inline std::vector<report::LabeledResult> labeled(
    const std::vector<core::SweepResult>& rs) {
  std::vector<report::LabeledResult> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back({r.job.label, &r.result});
  return out;
}

/// Left column of Figures 2/3: execution time relative to CC-NUMA, stacked
/// by bucket (each cell is that bucket's share of CC-NUMA's total time, so
/// the row sums to the "relative execution time" bar height).
inline void print_time_breakdown(const std::string& app,
                                 const std::vector<core::SweepResult>& rs,
                                 std::ostream& os = std::cout) {
  const auto view = labeled(rs);
  os << "== " << app << ": relative execution time (left chart) ==\n";
  report::time_breakdown_table(view, report::baseline_cycles(view)).print(os);
}

/// Right column of Figures 2/3: where cache misses to shared data were
/// satisfied.  COHERENCE is folded into CONF/CAPC as the paper does.
inline void print_miss_breakdown(const std::string& app,
                                 const std::vector<core::SweepResult>& rs,
                                 std::ostream& os = std::cout) {
  os << "== " << app << ": where misses were satisfied (right chart) ==\n";
  report::miss_breakdown_table(labeled(rs)).print(os);
}

/// Finds a result by label; aborts with a message if missing.
inline const core::SweepResult& find(
    const std::vector<core::SweepResult>& rs, const std::string& label) {
  for (const auto& r : rs)
    if (r.job.label == label) return r;
  std::cerr << "missing result: " << label << '\n';
  std::abort();
}

}  // namespace ascoma::bench
