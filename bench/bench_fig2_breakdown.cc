// Figure 2 reproduction: barnes, em3d, fft — relative execution time by
// bucket (left charts) and where shared-data misses were satisfied (right
// charts), across CC-NUMA / S-COMA / AS-COMA / VC-NUMA / R-NUMA at the
// paper's memory pressures.  Ends with checks of the paper's headline
// claims for these applications.

#include <iostream>
#include <map>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Figure 2: barnes, em3d, fft ===\n\n";

  BenchJson bj("fig2_breakdown");
  std::map<std::string, std::vector<core::SweepResult>> all;
  for (const std::string app : {"barnes", "em3d", "fft"}) {
    const auto results =
        core::run_sweep(figure_jobs(app), bench_threads());
    print_time_breakdown(app, results);
    std::cout << '\n';
    print_miss_breakdown(app, results);
    std::cout << '\n';
    maybe_export_csv(app, results);
    bj.add(app, results);
    all[app] = results;
  }

  // ---- paper-claim spot checks ---------------------------------------------
  std::cout << "=== claim checks (paper section 5.2) ===\n";
  {
    const auto& rs = all.at("em3d");
    const double cc = static_cast<double>(find(rs, "CCNUMA(50%)").result.cycles().value());
    const double as90 = static_cast<double>(find(rs, "ASCOMA(90%)").result.cycles().value());
    const double rn90 = static_cast<double>(find(rs, "RNUMA(90%)").result.cycles().value());
    const double vc90 = static_cast<double>(find(rs, "VCNUMA(90%)").result.cycles().value());
    std::cout << "em3d @90%: AS-COMA/CC-NUMA = " << Table::num(as90 / cc, 3)
              << " (paper: AS-COMA outperforms CC-NUMA even at 90%)\n";
    std::cout << "em3d @90%: R-NUMA/CC-NUMA  = " << Table::num(rn90 / cc, 3)
              << " (paper: CC-NUMA outperforms R-NUMA by ~20% at 90%)\n";
    std::cout << "em3d @90%: AS-COMA beats R-NUMA by "
              << Table::pct((rn90 - as90) / rn90)
              << ", VC-NUMA by " << Table::pct((vc90 - as90) / vc90) << '\n';
  }
  {
    const auto& rs = all.at("barnes");
    const double cc = static_cast<double>(find(rs, "CCNUMA(50%)").result.cycles().value());
    const double as10 = static_cast<double>(find(rs, "ASCOMA(10%)").result.cycles().value());
    const double as50 = static_cast<double>(find(rs, "ASCOMA(50%)").result.cycles().value());
    std::cout << "barnes: AS-COMA/CC-NUMA = " << Table::num(as10 / cc, 3)
              << " @10%, " << Table::num(as50 / cc, 3)
              << " @50% (paper: AS-COMA consistently outperforms CC-NUMA)\n";
  }
  {
    const auto& rs = all.at("fft");
    const auto& cc = find(rs, "CCNUMA(50%)").result;
    const auto& as90 = find(rs, "ASCOMA(90%)").result;
    const double ratio = static_cast<double>(as90.cycles().value()) /
                         static_cast<double>(cc.cycles().value());
    const auto& m = cc.stats.totals.misses;
    std::cout << "fft: hybrids/CC-NUMA @90% = " << Table::num(ratio, 3)
              << " (paper: all architectures except pure S-COMA within a few %)\n";
    std::cout << "fft: RAC satisfied "
              << Table::pct(static_cast<double>(m[MissSource::kRac]) /
                            static_cast<double>(m.total()))
              << " of CC-NUMA misses (paper: the RAC plays a major role)\n";
  }
  return 0;
}
