// Figure 3 reproduction: lu, ocean, radix — relative execution time by
// bucket and miss satisfaction breakdown across architectures and memory
// pressures, plus the paper's headline claims for these applications.

#include <iostream>
#include <map>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Figure 3: lu, ocean, radix ===\n\n";

  BenchJson bj("fig3_breakdown");
  std::map<std::string, std::vector<core::SweepResult>> all;
  for (const std::string app : {"lu", "ocean", "radix"}) {
    const auto results =
        core::run_sweep(figure_jobs(app), bench_threads());
    print_time_breakdown(app, results);
    std::cout << '\n';
    print_miss_breakdown(app, results);
    std::cout << '\n';
    maybe_export_csv(app, results);
    bj.add(app, results);
    all[app] = results;
  }

  // ---- paper-claim spot checks ---------------------------------------------
  std::cout << "=== claim checks (paper sections 5.1/5.2) ===\n";
  {
    const auto& rs = all.at("radix");
    const double cc = static_cast<double>(find(rs, "CCNUMA(50%)").result.cycles().value());
    const double as10 = static_cast<double>(find(rs, "ASCOMA(10%)").result.cycles().value());
    const double rn10 = static_cast<double>(find(rs, "RNUMA(10%)").result.cycles().value());
    const double vc10 = static_cast<double>(find(rs, "VCNUMA(10%)").result.cycles().value());
    const double as90 = static_cast<double>(find(rs, "ASCOMA(90%)").result.cycles().value());
    const double rn90 = static_cast<double>(find(rs, "RNUMA(90%)").result.cycles().value());
    std::cout << "radix @10%: AS-COMA beats R-NUMA by "
              << Table::pct((rn10 - as10) / rn10) << ", VC-NUMA by "
              << Table::pct((vc10 - as10) / vc10)
              << " (paper: up to ~17% from S-COMA-first allocation)\n";
    std::cout << "radix @90%: AS-COMA/CC-NUMA = " << Table::num(as90 / cc, 3)
              << " (paper: within a few % of CC-NUMA at worst)\n";
    std::cout << "radix @90%: R-NUMA/CC-NUMA = " << Table::num(rn90 / cc, 3)
              << " (paper: R-NUMA far below CC-NUMA at 90%)\n";
  }
  {
    const auto& rs = all.at("lu");
    const double cc = static_cast<double>(find(rs, "CCNUMA(50%)").result.cycles().value());
    for (const char* label : {"ASCOMA(10%)", "ASCOMA(90%)", "RNUMA(90%)",
                              "VCNUMA(90%)"}) {
      std::cout << "lu: " << label << "/CC-NUMA = "
                << Table::num(static_cast<double>(find(rs, label).result.cycles().value()) / cc, 3)
                << '\n';
    }
    std::cout << "(paper: every hybrid outperforms CC-NUMA at all pressures "
                 "for lu)\n";
  }
  {
    const auto& rs = all.at("ocean");
    const auto& cc = find(rs, "CCNUMA(50%)").result;
    const auto& m = cc.stats.totals.misses;
    std::cout << "ocean: CC-NUMA remote miss share = "
              << Table::pct(static_cast<double>(m.remote()) /
                            static_cast<double>(m.total()))
              << " (paper: only a small % of misses are remote)\n";
  }
  return 0;
}
