// Ablation: consistency model.  The paper's machine is sequentially
// consistent with blocking processors; its introduction points to
// latency-tolerating processor features as the complementary attack on
// remote latency.  This bench adds a store buffer (processor-consistency
// approximation; buffered stores drain in the background) and asks how much
// of the memory-architecture gap it closes on the write-heavy radix.

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: blocking stores vs store buffer (radix @50%)"
               " ===\n\n";

  std::vector<core::SweepJob> jobs;
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kAsComa}) {
    for (int sb : {0, 4, 16}) {
      core::SweepJob j;
      j.config.arch = arch;
      j.config.memory_pressure = 0.5;
      if (sb > 0) {
        j.config.blocking_stores = false;
        j.config.store_buffer_entries = static_cast<std::uint32_t>(sb);
      }
      j.label = std::string(to_string(arch)) +
                (sb == 0 ? "/blocking" : "/sb" + std::to_string(sb));
      j.workload = "radix";
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
  }
  const auto rs = core::run_sweep(jobs, bench_threads());
  BenchJson bj("ablation_consistency");
  bj.add("radix", rs);
  const double base =
      static_cast<double>(find(rs, "CCNUMA/blocking").result.cycles().value());

  Table t({"config", "cycles", "rel. to CCNUMA/blocking", "U-SH-MEM%"});
  for (const auto& r : rs) {
    t.add_row({r.job.label, std::to_string(r.result.cycles().value()),
               Table::num(static_cast<double>(r.result.cycles().value()) / base, 3),
               Table::pct(r.result.stats.totals.time.frac(
                   TimeBucket::kUserShared))});
  }
  t.print(std::cout);
  std::cout << "\nExpected: the store buffer hides write latency for every"
               " architecture, but does not\nsubstitute for the page cache —"
               " loads still pay remote latency, so AS-COMA retains\nits"
               " advantage under either consistency model.\n";
  return 0;
}
