// Ablation: AS-COMA's adaptive replacement back-off (contribution #2).
// Runs AS-COMA with the back-off enabled vs disabled across pressures on the
// two workloads where the paper attributes the high-pressure win to it
// (em3d and radix).  With the back-off disabled, AS-COMA keeps S-COMA-first
// allocation but remaps unconditionally whenever frames can be reclaimed —
// the thrashing mode the paper's Section 5.2 dissects.

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: adaptive back-off on/off (AS-COMA) ===\n\n";

  BenchJson bj("ablation_backoff");
  for (const std::string app : {"em3d", "radix"}) {
    std::vector<core::SweepJob> jobs;
    for (int variant = 0; variant < 3; ++variant) {
      for (int pct : {50, 70, 90}) {
        core::SweepJob j;
        j.config.arch = ArchModel::kAsComa;
        j.config.memory_pressure = pct / 100.0;
        const char* name = "backoff";
        if (variant == 1) {
          j.config.ascoma_backoff = false;
          name = "no-backoff";
        } else if (variant == 2) {
          // Fully naive: no adaptation *and* an unthrottled BSD daemon —
          // the configuration prior hybrid studies implicitly evaluate.
          j.config.ascoma_backoff = false;
          j.config.daemon_period = Cycle{50'000};
          name = "naive-daemon";
        }
        j.label = std::string(name) + "(" + std::to_string(pct) + "%)";
        j.workload = app;
        j.workload_scale = bench_scale();
        jobs.push_back(std::move(j));
      }
    }
    {
      core::SweepJob j;
      j.config.arch = ArchModel::kCcNuma;
      j.config.memory_pressure = 0.5;
      j.label = "CCNUMA";
      j.workload = app;
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
    const auto rs = core::run_sweep(jobs, bench_threads());
    bj.add(app, rs);
    const double cc = static_cast<double>(find(rs, "CCNUMA").result.cycles().value());

    Table t({"config", "rel.time", "K-OVERHD%", "upgrades", "downgrades",
             "suppressed", "threshold raises", "induced cold"});
    for (const auto& r : rs) {
      const auto& k = r.result.stats.totals.kernel;
      const auto& time = r.result.stats.totals.time;
      t.add_row({r.job.label,
                 Table::num(static_cast<double>(r.result.cycles().value()) / cc, 3),
                 Table::pct(time.frac(TimeBucket::kKernelOvhd)),
                 std::to_string(k.upgrades), std::to_string(k.downgrades),
                 std::to_string(k.remap_suppressed),
                 std::to_string(k.threshold_raises),
                 std::to_string(r.result.stats.totals.induced_cold_misses)});
    }
    std::cout << "-- " << app << " --\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected: without back-off, K-OVERHD and induced cold misses"
               " grow with pressure\nand relative time exceeds CC-NUMA; with"
               " back-off both stay bounded.\n";
  return 0;
}
