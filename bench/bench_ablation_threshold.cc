// Ablation: relocation threshold sensitivity.  The paper fixes the initial
// threshold at 64 refetches for all hybrids; this sweep shows how R-NUMA
// (fixed threshold) and AS-COMA (adaptive starting point) respond to the
// choice, on em3d at 85% pressure (above its ~76% ideal) where relocation decisions matter most.

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Ablation: relocation threshold sweep (em3d @85%) ===\n\n";

  std::vector<core::SweepJob> jobs;
  {
    core::SweepJob j;
    j.config.arch = ArchModel::kCcNuma;
    j.config.memory_pressure = 0.85;
    j.label = "CCNUMA";
    j.workload = "em3d";
    j.workload_scale = bench_scale();
    jobs.push_back(std::move(j));
  }
  for (ArchModel arch : {ArchModel::kRNuma, ArchModel::kAsComa}) {
    for (std::uint32_t threshold : {16u, 32u, 64u, 128u, 256u}) {
      core::SweepJob j;
      j.config.arch = arch;
      j.config.memory_pressure = 0.85;
      j.config.refetch_threshold = threshold;
      j.label = std::string(to_string(arch)) + "/T=" +
                std::to_string(threshold);
      j.workload = "em3d";
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
  }
  const auto rs = core::run_sweep(jobs, bench_threads());
  BenchJson bj("ablation_threshold");
  bj.add("em3d", rs);
  const double cc = static_cast<double>(find(rs, "CCNUMA").result.cycles().value());

  Table t({"config", "rel.time", "upgrades", "K-OVERHD%", "SCOMA hits",
           "CONF/CAPC remote"});
  for (const auto& r : rs) {
    const auto& k = r.result.stats.totals.kernel;
    const auto& m = r.result.stats.totals.misses;
    t.add_row({r.job.label,
               Table::num(static_cast<double>(r.result.cycles().value()) / cc, 3),
               std::to_string(k.upgrades),
               Table::pct(r.result.stats.totals.time.frac(
                   TimeBucket::kKernelOvhd)),
               std::to_string(m[MissSource::kScoma]),
               std::to_string(m[MissSource::kConfCapc])});
  }
  t.print(std::cout);
  std::cout << "\nExpected: R-NUMA is sensitive (low threshold => remap storm"
               " at pressure;\nhigh threshold => missed opportunities)."
               "  AS-COMA's adaptation flattens the curve.\n";
  return 0;
}
