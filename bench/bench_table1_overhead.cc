// Table 1 reproduction: the remote-memory-overhead decomposition per model,
//
//   (N_pagecache * T_pagecache) + (N_remote * T_remote)
//   + (N_cold * T_remote) + T_overhead
//
// measured (not assumed) on em3d at 50% memory pressure: the N terms come
// from the miss breakdown, the T terms from the configured Table 4 minimum
// latencies, and T_overhead from the realized K-OVERHD bucket.  The final
// column compares the model's prediction against the simulator's realized
// shared-memory stall + kernel overhead, validating the paper's cost model.

#include <iostream>

#include "bench_util.hh"
#include "workload/workload.hh"

using namespace ascoma;
using namespace ascoma::bench;

int main() {
  std::cout << "=== Table 1: remote memory overhead of various models ===\n\n";

  MachineConfig base;
  std::vector<core::SweepJob> jobs;
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kScoma,
                         ArchModel::kRNuma, ArchModel::kVcNuma,
                         ArchModel::kAsComa}) {
    core::SweepJob j;
    j.config = base;
    j.config.arch = arch;
    j.config.memory_pressure = 0.5;
    j.label = to_string(arch);
    j.workload = "em3d";
    j.workload_scale = bench_scale();
    jobs.push_back(std::move(j));
  }
  const auto rs = core::run_sweep(jobs, bench_threads());
  BenchJson bj("table1_overhead");
  bj.add("em3d", rs);

  Table t({"model", "N_pagecache", "N_remote", "N_cold", "T_overhead(cyc)",
           "model estimate", "realized", "ratio"});
  for (const auto& r : rs) {
    const auto& m = r.result.stats.totals.misses;
    const auto& time = r.result.stats.totals.time;
    const MachineConfig& cfg = r.result.config;

    const double n_pagecache = static_cast<double>(m[MissSource::kScoma]);
    const double n_remote = static_cast<double>(m[MissSource::kConfCapc] +
                                                m[MissSource::kCoherence]);
    const double n_cold = static_cast<double>(m[MissSource::kCold]);
    const double t_overhead =
        static_cast<double>(time[TimeBucket::kKernelOvhd].value());

    const double estimate =
        n_pagecache * static_cast<double>(cfg.min_local_latency().value()) +
        (n_remote + n_cold) * static_cast<double>(cfg.min_remote_latency().value()) +
        t_overhead;
    // Realized cost of the same components: stall on shared memory minus the
    // part attributable to home/L1/RAC traffic is hard to isolate exactly, so
    // we compare against stall attributable to page-cache + remote + kernel.
    const double realized =
        static_cast<double>(time[TimeBucket::kUserShared].value()) *
            ((n_pagecache + n_remote + n_cold) /
             std::max(1.0, static_cast<double>(m.total()))) +
        t_overhead;

    t.add_row({r.job.label, Table::num(n_pagecache, 0),
               Table::num(n_remote, 0), Table::num(n_cold, 0),
               Table::num(t_overhead, 0), Table::num(estimate, 0),
               Table::num(realized, 0),
               Table::num(realized > 0 ? estimate / realized : 0.0, 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nNotes (paper Table 1 structure):\n"
         "  CCNUMA: N_pagecache = 0, N_cold ~ essential cold only, "
         "T_overhead = 0.\n"
         "  SCOMA:  N_remote(conflict) ~ 0 (all replicated), overhead grows "
         "with pressure.\n"
         "  Hybrids: all four terms non-zero; the ratio column shows the "
         "minimum-latency model\n"
         "  underestimates realized cost by the contention factor (>1 means "
         "over-estimate).\n";
  return 0;
}
