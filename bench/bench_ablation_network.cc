// Ablation: interconnect speed.  The paper's introduction notes that
// high-end interconnects (SUN UE10000, SGI Origin) push the remote:local
// latency ratio toward ~2:1 but "require expensive hardware"; the hybrid
// architectures attack the problem from the other side, by reducing the
// *frequency* of remote accesses.  This sweep varies the network speed and
// shows how the hybrids' advantage over CC-NUMA scales with the ratio —
// the slower the network, the more a page cache is worth.

#include <iostream>

#include "bench_util.hh"

using namespace ascoma;
using namespace ascoma::bench;

namespace {

// Scale the network parameters to hit (approximately) a target remote:local
// minimum-latency ratio.
MachineConfig with_ratio(double target_ratio) {
  MachineConfig cfg;
  // Tune the per-hop costs; local latency (50) is unchanged, so
  // remote = 66 + 2 * one_way.
  const double needed_one_way = (target_ratio * 50.0 - 66.0) / 2.0;
  // one_way = 2*ni + stages*ft + (stages+1)*prop + port.  Keep ft/prop/port
  // fixed, solve for ni (>= 1).
  const double fixed = 2.0 * 4 + 3.0 * 2 + 8.0;
  const double ni = std::max(1.0, (needed_one_way - fixed) / 2.0);
  cfg.net_interface_cycles = Cycle{static_cast<Cycle::rep>(ni + 0.5)};
  return cfg;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: remote:local latency ratio (em3d @50%) ===\n\n";

  BenchJson bj("ablation_network");
  Table t({"remote:local", "remote min (cyc)", "CCNUMA cyc", "ASCOMA rel.",
           "SCOMA rel.", "RNUMA rel."});
  for (double ratio : {2.0, 3.0, 6.0, 10.0}) {
    const MachineConfig base = with_ratio(ratio);
    std::vector<core::SweepJob> jobs;
    for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kAsComa,
                           ArchModel::kScoma, ArchModel::kRNuma}) {
      core::SweepJob j;
      j.config = base;
      j.config.arch = arch;
      j.config.memory_pressure = 0.5;
      j.label = to_string(arch);
      j.workload = "em3d";
      j.workload_scale = bench_scale();
      jobs.push_back(std::move(j));
    }
    const auto rs = core::run_sweep(jobs, bench_threads());
    bj.add("em3d/ratio=" + Table::num(ratio, 1), rs);
    const double cc = static_cast<double>(find(rs, "CCNUMA").result.cycles().value());
    auto rel = [&](const char* label) {
      return Table::num(
          static_cast<double>(find(rs, label).result.cycles().value()) / cc, 3);
    };
    t.add_row({Table::num(static_cast<double>(base.min_remote_latency().value()) /
                              static_cast<double>(base.min_local_latency().value()),
                          2),
               std::to_string(base.min_remote_latency().value()),
               std::to_string(find(rs, "CCNUMA").result.cycles().value()),
               rel("ASCOMA"), rel("SCOMA"), rel("RNUMA")});
  }
  t.print(std::cout);
  std::cout << "\nExpected: the hybrids' advantage over CC-NUMA grows with"
               " the remote:local ratio —\nat SGI-Origin-class 2:1 networks"
               " replication buys little; at 10:1 it is decisive.\n";
  return 0;
}
