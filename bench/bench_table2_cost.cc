// Table 2 reproduction: storage cost and implementation complexity of each
// model, instantiated for each paper workload's real footprint.

#include <iostream>

#include "arch/storage.hh"
#include "bench_util.hh"
#include "workload/workload.hh"

using namespace ascoma;

int main() {
  std::cout << "=== Table 2: cost and complexity of various models ===\n\n";

  MachineConfig cfg;
  Table t({"model", "workload", "pages/node", "page-cache state (B)",
           "page map (B)", "refetch counters (B)", "total (B)"});
  for (ArchModel m : {ArchModel::kCcNuma, ArchModel::kScoma,
                      ArchModel::kRNuma, ArchModel::kVcNuma,
                      ArchModel::kAsComa}) {
    for (const auto& name : workload::workload_names()) {
      auto wl = workload::make_workload(name);
      cfg.nodes = wl->nodes();
      const std::uint64_t pages = wl->pages_per_node();
      const auto c = arch::estimate_storage(m, cfg, pages);
      t.add_row({to_string(m), name, std::to_string(pages),
                 std::to_string(c.page_cache_state_bytes),
                 std::to_string(c.page_map_bytes),
                 std::to_string(c.refetch_counter_bytes),
                 std::to_string(c.total_bytes())});
    }
  }
  t.print(std::cout);

  std::cout << "\ncomplexity inventory:\n";
  cfg.nodes = 8;
  for (ArchModel m : {ArchModel::kCcNuma, ArchModel::kScoma,
                      ArchModel::kRNuma, ArchModel::kVcNuma,
                      ArchModel::kAsComa}) {
    const auto c = arch::estimate_storage(m, cfg, 512);
    std::cout << "  " << to_string(m) << ":";
    if (c.complexity.empty()) std::cout << " (none beyond base CC-NUMA)";
    std::cout << '\n';
    for (const auto& item : c.complexity)
      std::cout << "    - " << item << '\n';
  }
  return 0;
}
