// policy_tuning: explore AS-COMA's policy knobs on one workload — the
// refetch threshold, the threshold increment, the daemon watermarks, and the
// two ablation switches — and report how each affects the outcome.  This is
// the starting point for adapting the policy to a new machine balance
// (e.g. a faster interconnect lowers the payoff of each remap).
//
//   ./policy_tuning [workload] [pressure%]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/sweep.hh"
#include "workload/workload.hh"

using namespace ascoma;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "em3d";
  const double pressure = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.85;
  if (!workload::make_workload(name)) {
    std::cerr << "unknown workload '" << name << "'\n";
    return 1;
  }

  std::vector<core::SweepJob> jobs;
  auto add = [&](const std::string& label, auto mutate) {
    core::SweepJob j;
    j.config.arch = ArchModel::kAsComa;
    j.config.memory_pressure = pressure;
    mutate(j.config);
    j.label = label;
    j.workload = name;
    jobs.push_back(std::move(j));
  };

  add("baseline", [](MachineConfig&) {});
  add("threshold=16", [](MachineConfig& c) { c.refetch_threshold = 16; });
  add("threshold=256", [](MachineConfig& c) { c.refetch_threshold = 256; });
  add("increment=8", [](MachineConfig& c) { c.threshold_increment = 8; });
  add("increment=128", [](MachineConfig& c) { c.threshold_increment = 128; });
  add("free_target=15%", [](MachineConfig& c) { c.free_target_frac = 0.15; });
  add("free_target=3%", [](MachineConfig& c) { c.free_target_frac = 0.03; });
  add("daemon=0.5M", [](MachineConfig& c) { c.daemon_period = Cycle{500'000}; });
  add("daemon=8M", [](MachineConfig& c) { c.daemon_period = Cycle{8'000'000}; });
  add("no-scoma-first", [](MachineConfig& c) { c.ascoma_scoma_first = false; });
  add("no-backoff", [](MachineConfig& c) { c.ascoma_backoff = false; });
  {
    core::SweepJob j;
    j.config.arch = ArchModel::kCcNuma;
    j.config.memory_pressure = pressure;
    j.label = "CCNUMA-ref";
    j.workload = name;
    jobs.push_back(std::move(j));
  }

  const auto rs = core::run_sweep(jobs);
  double cc = 0.0;
  for (const auto& r : rs)
    if (r.job.label == "CCNUMA-ref") cc = static_cast<double>(r.result.cycles().value());

  std::cout << "AS-COMA policy knobs on " << name << " at "
            << Table::pct(pressure, 0) << " memory pressure\n\n";
  Table t({"variant", "rel. to CCNUMA", "upgrades", "suppressed",
           "daemon runs", "K-OVERHD%"});
  for (const auto& r : rs) {
    const auto& k = r.result.stats.totals.kernel;
    t.add_row({r.job.label,
               Table::num(static_cast<double>(r.result.cycles().value()) / cc, 3),
               std::to_string(k.upgrades), std::to_string(k.remap_suppressed),
               std::to_string(k.daemon_runs),
               Table::pct(r.result.stats.totals.time.frac(
                   TimeBucket::kKernelOvhd))});
  }
  t.print(std::cout);
  return 0;
}
