// trace_replay: record a workload's operation streams to a binary trace
// file, then replay the trace through two different architectures.  This is
// the workflow for driving the machine with externally captured traces.
//
//   ./trace_replay [workload] [trace-path]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/machine.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

using namespace ascoma;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "ocean";
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/ascoma_" + name + ".trace";

  auto wl = workload::make_workload(name, 0.5);
  if (!wl) {
    std::cerr << "unknown workload '" << name << "'\n";
    return 1;
  }

  MachineConfig cfg;
  const std::uint64_t ops = trace::record(*wl, cfg.seed, path);
  std::cout << "recorded " << ops << " ops from '" << name << "' to " << path
            << "\n\n";

  trace::TraceWorkload replay(path);

  Table t({"source", "arch", "cycles", "misses", "remote fetches"});
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kAsComa}) {
    cfg.arch = arch;
    cfg.memory_pressure = 0.5;
    const auto live = core::simulate(cfg, *wl);
    const auto traced = core::simulate(cfg, replay);
    t.add_row({"generator", to_string(arch), std::to_string(live.cycles().value()),
               std::to_string(live.stats.totals.misses.total()),
               std::to_string(live.stats.totals.misses.remote())});
    t.add_row({"trace", to_string(arch), std::to_string(traced.cycles().value()),
               std::to_string(traced.stats.totals.misses.total()),
               std::to_string(traced.stats.totals.misses.remote())});
    if (live.cycles() != traced.cycles()) {
      std::cerr << "ERROR: trace replay diverged from the live run!\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\ntrace replay is cycle-exact with the live generator.\n";
  return 0;
}
