// pressure_sweep: the paper's core experiment as a library walkthrough —
// sweep one workload across memory pressures for all five architectures (in
// parallel, via core::run_sweep) and print the relative execution time
// series, i.e. one Figure 2/3 panel as a text chart.
//
//   ./pressure_sweep [workload] [scale]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/sweep.hh"
#include "workload/workload.hh"

using namespace ascoma;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "lu";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  if (!workload::make_workload(name)) {
    std::cerr << "unknown workload '" << name << "'\n";
    return 1;
  }

  const std::vector<double> pressures = {0.1, 0.3, 0.5, 0.7, 0.9};
  const auto jobs = core::paper_grid(name, pressures, MachineConfig{}, scale);
  const auto results = core::run_sweep(jobs);

  double ccnuma = 0.0;
  for (const auto& r : results)
    if (r.job.config.arch == ArchModel::kCcNuma)
      ccnuma = static_cast<double>(r.result.cycles().value());

  std::cout << "workload: " << name
            << " — execution time relative to CC-NUMA\n\n";
  Table t({"architecture", "10%", "30%", "50%", "70%", "90%"});
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kScoma,
                         ArchModel::kAsComa, ArchModel::kVcNuma,
                         ArchModel::kRNuma}) {
    std::vector<std::string> row{to_string(arch)};
    for (double p : pressures) {
      bool found = false;
      for (const auto& r : results) {
        if (r.job.config.arch != arch) continue;
        if (arch != ArchModel::kCcNuma &&
            std::abs(r.job.config.memory_pressure - p) > 1e-9)
          continue;
        row.push_back(Table::num(
            static_cast<double>(r.result.cycles().value()) / ccnuma, 3));
        found = true;
        break;
      }
      if (!found) row.push_back("-");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\n(CC-NUMA is memory-pressure independent: one value for all"
               " columns.)\n";
  return 0;
}
