// custom_workload: drive the machine with your own sharing pattern.
//
// Demonstrates the two extension points a downstream user has:
//  1. SyntheticWorkload — dial in a sharing signature with parameters.
//  2. Subclassing workload::Workload — full control over the op streams
//     (shown here with a tiny producer/consumer pipeline program).
//
//   ./custom_workload

#include <iostream>
#include <memory>

#include "common/table.hh"
#include "core/machine.hh"
#include "workload/synthetic.hh"

using namespace ascoma;

// A hand-written workload: node 0 produces a buffer each iteration; every
// other node consumes (reads) it.  Classic single-producer sharing: the
// producer's partition is hot at every consumer, and writes invalidate all
// replicas each round.
class PipelineWorkload final : public workload::Workload {
 public:
  std::string name() const override { return "pipeline"; }
  std::uint32_t nodes() const override { return 4; }
  std::uint64_t total_pages() const override { return 4 * 64; }

  std::unique_ptr<workload::OpStream> stream(
      std::uint32_t proc, std::uint64_t /*seed*/) const override {
    workload::StreamBuilder b(page_bytes(), line_bytes());
    const VPageId buffer_base{0};        // node 0's partition
    const std::uint64_t buffer_pages = 48;
    for (std::uint32_t iter = 0; iter < 8; ++iter) {
      if (proc == 0) {
        // Produce: write the buffer.
        for (std::uint64_t p = 0; p < buffer_pages; ++p)
          for (std::uint32_t l = 0; l < 16; ++l)
            b.store(buffer_base + p, l * 8);
        b.compute(Cycle{500});
      } else {
        // Consumers do private work while the producer writes.
        b.compute(Cycle{2000});
        b.private_ops(200);
      }
      b.barrier();
      if (proc != 0) {
        // Consume: read the whole buffer, twice (temporal reuse).
        for (std::uint32_t sweep = 0; sweep < 2; ++sweep)
          for (std::uint64_t p = 0; p < buffer_pages; ++p)
            for (std::uint32_t l = 0; l < 16; ++l)
              b.load(buffer_base + p, l * 8);
      } else {
        b.compute(Cycle{3000});
      }
      b.barrier();
    }
    return std::make_unique<workload::VectorStream>(b.take());
  }
};

int main() {
  // --- 1. parameterised synthetic workload ---------------------------------
  workload::SyntheticParams params;
  params.name = "my-kernel";
  params.nodes = 8;
  params.home_pages = 96;
  params.remote_pages = 64;
  params.iterations = 6;
  params.loads_per_page = 32;
  params.write_fraction = 0.1;
  params.locks = 8;
  workload::SyntheticWorkload synthetic(params);

  Table t1({"arch", "pressure", "cycles", "local miss %", "upgrades"});
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kAsComa}) {
    for (double pressure : {0.2, 0.9}) {
      MachineConfig cfg;
      cfg.arch = arch;
      cfg.memory_pressure = pressure;
      const auto r = core::simulate(cfg, synthetic);
      const auto& m = r.stats.totals.misses;
      t1.add_row({to_string(arch), Table::pct(pressure, 0),
                  std::to_string(r.cycles().value()),
                  Table::pct(static_cast<double>(m.local()) /
                             static_cast<double>(m.total())),
                  std::to_string(r.stats.totals.kernel.upgrades)});
    }
  }
  std::cout << "== synthetic workload '" << synthetic.name() << "' ==\n";
  t1.print(std::cout);

  // --- 2. fully custom workload ---------------------------------------------
  PipelineWorkload pipeline;
  Table t2({"arch", "cycles", "coherence misses", "scoma hits"});
  for (ArchModel arch :
       {ArchModel::kCcNuma, ArchModel::kScoma, ArchModel::kAsComa}) {
    MachineConfig cfg;
    cfg.arch = arch;
    cfg.memory_pressure = 0.3;
    const auto r = core::simulate(cfg, pipeline);
    const auto& m = r.stats.totals.misses;
    t2.add_row({to_string(arch), std::to_string(r.cycles().value()),
                std::to_string(m[MissSource::kCoherence]),
                std::to_string(m[MissSource::kScoma])});
  }
  std::cout << "\n== custom pipeline workload ==\n";
  t2.print(std::cout);
  std::cout << "\nNote how the producer's writes turn consumer replicas into"
               " coherence misses\nregardless of architecture — replication"
               " only helps re-read data.\n";
  return 0;
}
