// smp_nodes: the SMP-node extension in action.  The paper's Figure 1 allows
// "one or more commodity microprocessors" per node; this example scales the
// processors per node at a fixed per-processor workload and shows where the
// node's shared resources (bus, DRAM, DSM engine) saturate, and how the
// sibling bus snoop turns some would-be remote traffic into cache-to-cache
// transfers.
//
//   ./smp_nodes [pressure%]

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "core/machine.hh"
#include "workload/synthetic.hh"

using namespace ascoma;

int main(int argc, char** argv) {
  const double pressure = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.5;

  Table t({"procs/node", "processors", "cycles", "sibling transfers",
           "bus util (node 0)", "rel. slowdown/proc"});
  double base = 0.0;
  for (std::uint32_t ppn : {1u, 2u, 4u, 8u}) {
    workload::SyntheticParams p;
    p.name = "smp-demo";
    p.nodes = 4;
    p.procs_per_node = ppn;
    p.home_pages = 64;
    p.remote_pages = 32;
    p.iterations = 4;
    p.loads_per_page = 16;
    p.write_fraction = 0.1;
    workload::SyntheticWorkload wl(p);

    MachineConfig cfg;
    cfg.arch = ArchModel::kAsComa;
    cfg.memory_pressure = pressure;
    core::Machine m(cfg, wl);
    const auto r = m.run();

    const double cycles = static_cast<double>(r.cycles().value());
    if (ppn == 1) base = cycles;
    const double bus_util =
        m.memory().bus(NodeId{0}).resource().utilization(r.cycles());
    t.add_row({std::to_string(ppn), std::to_string(4 * ppn),
               std::to_string(r.cycles().value()),
               std::to_string(m.memory().sibling_transfers()),
               Table::pct(bus_util),
               Table::num(cycles / base, 2)});
  }
  std::cout << "AS-COMA, " << Table::pct(pressure, 0)
            << " memory pressure, fixed per-processor work:\n\n";
  t.print(std::cout);
  std::cout << "\nEach processor runs its own copy of the stream, so perfect"
               " scaling would keep\ncycles flat.  The slowdown has two"
               " sources: contention on the node's shared\nbus/DRAM/DSM"
               " engine, and — dominant here — the *effective memory"
               " pressure*:\nevery added processor brings its own hot remote"
               " set, but the node's page cache\ndoes not grow, so the"
               " S-COMA replicas that fit per processor shrink.  Sibling\n"
               "cache-to-cache transfers partially offset both effects.\n";
  return 0;
}
