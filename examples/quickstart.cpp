// Quickstart: build a machine, run one workload under two architectures at
// two memory pressures, and print the paper-style summary.
//
//   ./quickstart [workload] [scale]
//
// Demonstrates the three public-API steps: configure a MachineConfig, make a
// workload, call core::simulate().

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/machine.hh"
#include "core/sweep.hh"
#include "workload/workload.hh"

using namespace ascoma;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "em3d";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  auto wl = workload::make_workload(name, scale);
  if (!wl) {
    std::cerr << "unknown workload '" << name << "'; choose from:";
    for (const auto& n : workload::workload_names()) std::cerr << ' ' << n;
    std::cerr << '\n';
    return 1;
  }

  MachineConfig base;  // paper defaults (Tables 3/4; DESIGN.md section 6)

  Table t({"config", "cycles", "rel. to CCNUMA", "U-SH-MEM", "K-OVERHD",
           "SYNC", "local miss %", "remote fetches", "upgrades+remaps"});

  double ccnuma_cycles = 0.0;
  for (const auto& [arch, pressure] :
       std::vector<std::pair<ArchModel, double>>{
           {ArchModel::kCcNuma, 0.50},
           {ArchModel::kScoma, 0.10},
           {ArchModel::kScoma, 0.90},
           {ArchModel::kAsComa, 0.10},
           {ArchModel::kAsComa, 0.90},
           {ArchModel::kRNuma, 0.90},
       }) {
    MachineConfig cfg = base;
    cfg.arch = arch;
    cfg.memory_pressure = pressure;
    const core::RunResult r = core::simulate(cfg, *wl);

    const auto& m = r.stats.totals.misses;
    const auto& time = r.stats.totals.time;
    const double cycles = static_cast<double>(r.cycles().value());
    if (arch == ArchModel::kCcNuma) ccnuma_cycles = cycles;

    t.add_row({std::string(to_string(arch)) + "(" +
                   Table::num(pressure * 100, 0) + "%)",
               Table::num(cycles, 0),
               ccnuma_cycles > 0 ? Table::num(cycles / ccnuma_cycles, 3)
                                 : "-",
               Table::pct(time.frac(TimeBucket::kUserShared)),
               Table::pct(time.frac(TimeBucket::kKernelOvhd)),
               Table::pct(time.frac(TimeBucket::kSync)),
               Table::pct(m.total() ? static_cast<double>(m.local()) /
                                          static_cast<double>(m.total())
                                    : 0.0),
               std::to_string(m.remote()),
               std::to_string(r.stats.totals.kernel.upgrades +
                              r.stats.totals.kernel.downgrades)});
  }

  std::cout << "workload: " << wl->name()
            << "  (pages/node: " << wl->pages_per_node() << ")\n\n";
  t.print(std::cout);
  std::cout << "\nColumns mirror the paper's Figures 2/3: relative execution"
               " time and where misses were satisfied.\n";
  return 0;
}
