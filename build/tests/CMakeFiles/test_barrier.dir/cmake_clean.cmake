file(REMOVE_RECURSE
  "CMakeFiles/test_barrier.dir/test_barrier.cc.o"
  "CMakeFiles/test_barrier.dir/test_barrier.cc.o.d"
  "test_barrier"
  "test_barrier.pdb"
  "test_barrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
