file(REMOVE_RECURSE
  "CMakeFiles/test_policy.dir/test_policy.cc.o"
  "CMakeFiles/test_policy.dir/test_policy.cc.o.d"
  "test_policy"
  "test_policy.pdb"
  "test_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
