file(REMOVE_RECURSE
  "CMakeFiles/test_page_cache.dir/test_page_cache.cc.o"
  "CMakeFiles/test_page_cache.dir/test_page_cache.cc.o.d"
  "test_page_cache"
  "test_page_cache.pdb"
  "test_page_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
