file(REMOVE_RECURSE
  "CMakeFiles/test_workload_signatures.dir/test_workload_signatures.cc.o"
  "CMakeFiles/test_workload_signatures.dir/test_workload_signatures.cc.o.d"
  "test_workload_signatures"
  "test_workload_signatures.pdb"
  "test_workload_signatures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
