# Empty compiler generated dependencies file for test_workload_signatures.
# This may be replaced when dependencies are built.
