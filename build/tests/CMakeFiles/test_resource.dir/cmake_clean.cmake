file(REMOVE_RECURSE
  "CMakeFiles/test_resource.dir/test_resource.cc.o"
  "CMakeFiles/test_resource.dir/test_resource.cc.o.d"
  "test_resource"
  "test_resource.pdb"
  "test_resource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
