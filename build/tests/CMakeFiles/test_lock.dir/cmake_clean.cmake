file(REMOVE_RECURSE
  "CMakeFiles/test_lock.dir/test_lock.cc.o"
  "CMakeFiles/test_lock.dir/test_lock.cc.o.d"
  "test_lock"
  "test_lock.pdb"
  "test_lock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
