# Empty dependencies file for test_lock.
# This may be replaced when dependencies are built.
