# Empty compiler generated dependencies file for test_pageout_daemon.
# This may be replaced when dependencies are built.
