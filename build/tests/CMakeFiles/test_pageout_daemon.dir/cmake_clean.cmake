file(REMOVE_RECURSE
  "CMakeFiles/test_pageout_daemon.dir/test_pageout_daemon.cc.o"
  "CMakeFiles/test_pageout_daemon.dir/test_pageout_daemon.cc.o.d"
  "test_pageout_daemon"
  "test_pageout_daemon.pdb"
  "test_pageout_daemon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pageout_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
