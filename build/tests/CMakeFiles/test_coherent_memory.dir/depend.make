# Empty dependencies file for test_coherent_memory.
# This may be replaced when dependencies are built.
