file(REMOVE_RECURSE
  "CMakeFiles/test_coherent_memory.dir/test_coherent_memory.cc.o"
  "CMakeFiles/test_coherent_memory.dir/test_coherent_memory.cc.o.d"
  "test_coherent_memory"
  "test_coherent_memory.pdb"
  "test_coherent_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherent_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
