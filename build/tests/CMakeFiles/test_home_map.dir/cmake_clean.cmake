file(REMOVE_RECURSE
  "CMakeFiles/test_home_map.dir/test_home_map.cc.o"
  "CMakeFiles/test_home_map.dir/test_home_map.cc.o.d"
  "test_home_map"
  "test_home_map.pdb"
  "test_home_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_home_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
