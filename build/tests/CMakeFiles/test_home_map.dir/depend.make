# Empty dependencies file for test_home_map.
# This may be replaced when dependencies are built.
