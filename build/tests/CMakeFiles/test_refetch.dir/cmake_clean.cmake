file(REMOVE_RECURSE
  "CMakeFiles/test_refetch.dir/test_refetch.cc.o"
  "CMakeFiles/test_refetch.dir/test_refetch.cc.o.d"
  "test_refetch"
  "test_refetch.pdb"
  "test_refetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
