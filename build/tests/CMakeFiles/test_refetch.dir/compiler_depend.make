# Empty compiler generated dependencies file for test_refetch.
# This may be replaced when dependencies are built.
