# Empty compiler generated dependencies file for test_machine_kernel.
# This may be replaced when dependencies are built.
