file(REMOVE_RECURSE
  "CMakeFiles/test_machine_kernel.dir/test_machine_kernel.cc.o"
  "CMakeFiles/test_machine_kernel.dir/test_machine_kernel.cc.o.d"
  "test_machine_kernel"
  "test_machine_kernel.pdb"
  "test_machine_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
