# Empty dependencies file for test_directory.
# This may be replaced when dependencies are built.
