# Empty compiler generated dependencies file for test_dram_bus.
# This may be replaced when dependencies are built.
