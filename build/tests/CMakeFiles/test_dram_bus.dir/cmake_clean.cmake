file(REMOVE_RECURSE
  "CMakeFiles/test_dram_bus.dir/test_dram_bus.cc.o"
  "CMakeFiles/test_dram_bus.dir/test_dram_bus.cc.o.d"
  "test_dram_bus"
  "test_dram_bus.pdb"
  "test_dram_bus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
