# Empty dependencies file for ascoma_cli.
# This may be replaced when dependencies are built.
