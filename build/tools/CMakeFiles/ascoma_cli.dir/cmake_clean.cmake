file(REMOVE_RECURSE
  "CMakeFiles/ascoma_cli.dir/ascoma_sim.cc.o"
  "CMakeFiles/ascoma_cli.dir/ascoma_sim.cc.o.d"
  "ascoma"
  "ascoma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
