file(REMOVE_RECURSE
  "CMakeFiles/pressure_sweep.dir/pressure_sweep.cpp.o"
  "CMakeFiles/pressure_sweep.dir/pressure_sweep.cpp.o.d"
  "pressure_sweep"
  "pressure_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
