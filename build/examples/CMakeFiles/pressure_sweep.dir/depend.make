# Empty dependencies file for pressure_sweep.
# This may be replaced when dependencies are built.
