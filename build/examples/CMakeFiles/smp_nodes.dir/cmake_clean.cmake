file(REMOVE_RECURSE
  "CMakeFiles/smp_nodes.dir/smp_nodes.cpp.o"
  "CMakeFiles/smp_nodes.dir/smp_nodes.cpp.o.d"
  "smp_nodes"
  "smp_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
