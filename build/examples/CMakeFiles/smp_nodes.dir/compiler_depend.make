# Empty compiler generated dependencies file for smp_nodes.
# This may be replaced when dependencies are built.
