file(REMOVE_RECURSE
  "CMakeFiles/policy_tuning.dir/policy_tuning.cpp.o"
  "CMakeFiles/policy_tuning.dir/policy_tuning.cpp.o.d"
  "policy_tuning"
  "policy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
