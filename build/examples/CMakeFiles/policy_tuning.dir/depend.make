# Empty dependencies file for policy_tuning.
# This may be replaced when dependencies are built.
