file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_latency.dir/bench_table4_latency.cc.o"
  "CMakeFiles/bench_table4_latency.dir/bench_table4_latency.cc.o.d"
  "bench_table4_latency"
  "bench_table4_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
