
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_latency.cc" "bench/CMakeFiles/bench_table4_latency.dir/bench_table4_latency.cc.o" "gcc" "bench/CMakeFiles/bench_table4_latency.dir/bench_table4_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/ascoma_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ascoma_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ascoma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ascoma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ascoma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
