file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_consistency.dir/bench_ablation_consistency.cc.o"
  "CMakeFiles/bench_ablation_consistency.dir/bench_ablation_consistency.cc.o.d"
  "bench_ablation_consistency"
  "bench_ablation_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
