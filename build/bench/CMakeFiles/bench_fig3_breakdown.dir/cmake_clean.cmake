file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_breakdown.dir/bench_fig3_breakdown.cc.o"
  "CMakeFiles/bench_fig3_breakdown.dir/bench_fig3_breakdown.cc.o.d"
  "bench_fig3_breakdown"
  "bench_fig3_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
