# Empty dependencies file for bench_fig3_breakdown.
# This may be replaced when dependencies are built.
