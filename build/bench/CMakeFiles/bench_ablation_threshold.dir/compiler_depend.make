# Empty compiler generated dependencies file for bench_ablation_threshold.
# This may be replaced when dependencies are built.
