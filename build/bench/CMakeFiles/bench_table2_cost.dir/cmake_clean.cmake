file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cost.dir/bench_table2_cost.cc.o"
  "CMakeFiles/bench_table2_cost.dir/bench_table2_cost.cc.o.d"
  "bench_table2_cost"
  "bench_table2_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
