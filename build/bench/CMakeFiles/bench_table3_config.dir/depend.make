# Empty dependencies file for bench_table3_config.
# This may be replaced when dependencies are built.
