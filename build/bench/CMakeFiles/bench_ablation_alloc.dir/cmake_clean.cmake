file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alloc.dir/bench_ablation_alloc.cc.o"
  "CMakeFiles/bench_ablation_alloc.dir/bench_ablation_alloc.cc.o.d"
  "bench_ablation_alloc"
  "bench_ablation_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
