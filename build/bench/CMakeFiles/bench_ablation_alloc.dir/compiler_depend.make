# Empty compiler generated dependencies file for bench_ablation_alloc.
# This may be replaced when dependencies are built.
