# Empty dependencies file for bench_table6_relocation.
# This may be replaced when dependencies are built.
