file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_relocation.dir/bench_table6_relocation.cc.o"
  "CMakeFiles/bench_table6_relocation.dir/bench_table6_relocation.cc.o.d"
  "bench_table6_relocation"
  "bench_table6_relocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_relocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
