file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_overhead.dir/bench_table1_overhead.cc.o"
  "CMakeFiles/bench_table1_overhead.dir/bench_table1_overhead.cc.o.d"
  "bench_table1_overhead"
  "bench_table1_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
