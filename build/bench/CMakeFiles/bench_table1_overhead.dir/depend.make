# Empty dependencies file for bench_table1_overhead.
# This may be replaced when dependencies are built.
