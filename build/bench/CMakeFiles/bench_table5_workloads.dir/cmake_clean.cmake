file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_workloads.dir/bench_table5_workloads.cc.o"
  "CMakeFiles/bench_table5_workloads.dir/bench_table5_workloads.cc.o.d"
  "bench_table5_workloads"
  "bench_table5_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
