file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rac.dir/bench_ablation_rac.cc.o"
  "CMakeFiles/bench_ablation_rac.dir/bench_ablation_rac.cc.o.d"
  "bench_ablation_rac"
  "bench_ablation_rac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
