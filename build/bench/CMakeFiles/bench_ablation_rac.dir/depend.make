# Empty dependencies file for bench_ablation_rac.
# This may be replaced when dependencies are built.
