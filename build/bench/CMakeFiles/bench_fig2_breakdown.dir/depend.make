# Empty dependencies file for bench_fig2_breakdown.
# This may be replaced when dependencies are built.
