file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backoff.dir/bench_ablation_backoff.cc.o"
  "CMakeFiles/bench_ablation_backoff.dir/bench_ablation_backoff.cc.o.d"
  "bench_ablation_backoff"
  "bench_ablation_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
