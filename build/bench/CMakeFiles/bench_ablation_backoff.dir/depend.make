# Empty dependencies file for bench_ablation_backoff.
# This may be replaced when dependencies are built.
