# Empty compiler generated dependencies file for bench_ablation_kernel_costs.
# This may be replaced when dependencies are built.
