file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kernel_costs.dir/bench_ablation_kernel_costs.cc.o"
  "CMakeFiles/bench_ablation_kernel_costs.dir/bench_ablation_kernel_costs.cc.o.d"
  "bench_ablation_kernel_costs"
  "bench_ablation_kernel_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kernel_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
