file(REMOVE_RECURSE
  "CMakeFiles/ascoma_report.dir/report.cc.o"
  "CMakeFiles/ascoma_report.dir/report.cc.o.d"
  "libascoma_report.a"
  "libascoma_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
