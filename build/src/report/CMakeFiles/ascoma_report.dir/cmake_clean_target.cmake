file(REMOVE_RECURSE
  "libascoma_report.a"
)
