# Empty compiler generated dependencies file for ascoma_report.
# This may be replaced when dependencies are built.
