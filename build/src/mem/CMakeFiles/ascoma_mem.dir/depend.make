# Empty dependencies file for ascoma_mem.
# This may be replaced when dependencies are built.
