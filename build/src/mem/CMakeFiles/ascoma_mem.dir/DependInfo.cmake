
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bus.cc" "src/mem/CMakeFiles/ascoma_mem.dir/bus.cc.o" "gcc" "src/mem/CMakeFiles/ascoma_mem.dir/bus.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/ascoma_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/ascoma_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/ascoma_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/ascoma_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/rac.cc" "src/mem/CMakeFiles/ascoma_mem.dir/rac.cc.o" "gcc" "src/mem/CMakeFiles/ascoma_mem.dir/rac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ascoma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
