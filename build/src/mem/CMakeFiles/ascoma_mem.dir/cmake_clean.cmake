file(REMOVE_RECURSE
  "CMakeFiles/ascoma_mem.dir/bus.cc.o"
  "CMakeFiles/ascoma_mem.dir/bus.cc.o.d"
  "CMakeFiles/ascoma_mem.dir/cache.cc.o"
  "CMakeFiles/ascoma_mem.dir/cache.cc.o.d"
  "CMakeFiles/ascoma_mem.dir/dram.cc.o"
  "CMakeFiles/ascoma_mem.dir/dram.cc.o.d"
  "CMakeFiles/ascoma_mem.dir/rac.cc.o"
  "CMakeFiles/ascoma_mem.dir/rac.cc.o.d"
  "libascoma_mem.a"
  "libascoma_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
