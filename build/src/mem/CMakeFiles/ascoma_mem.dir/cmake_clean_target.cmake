file(REMOVE_RECURSE
  "libascoma_mem.a"
)
