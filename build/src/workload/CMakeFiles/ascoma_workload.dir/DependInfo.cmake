
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/barnes.cc" "src/workload/CMakeFiles/ascoma_workload.dir/barnes.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/barnes.cc.o.d"
  "/root/repo/src/workload/em3d.cc" "src/workload/CMakeFiles/ascoma_workload.dir/em3d.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/em3d.cc.o.d"
  "/root/repo/src/workload/fft.cc" "src/workload/CMakeFiles/ascoma_workload.dir/fft.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/fft.cc.o.d"
  "/root/repo/src/workload/lu.cc" "src/workload/CMakeFiles/ascoma_workload.dir/lu.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/lu.cc.o.d"
  "/root/repo/src/workload/ocean.cc" "src/workload/CMakeFiles/ascoma_workload.dir/ocean.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/ocean.cc.o.d"
  "/root/repo/src/workload/radix.cc" "src/workload/CMakeFiles/ascoma_workload.dir/radix.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/radix.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/ascoma_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/ascoma_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/ascoma_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
