file(REMOVE_RECURSE
  "CMakeFiles/ascoma_workload.dir/barnes.cc.o"
  "CMakeFiles/ascoma_workload.dir/barnes.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/em3d.cc.o"
  "CMakeFiles/ascoma_workload.dir/em3d.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/fft.cc.o"
  "CMakeFiles/ascoma_workload.dir/fft.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/lu.cc.o"
  "CMakeFiles/ascoma_workload.dir/lu.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/ocean.cc.o"
  "CMakeFiles/ascoma_workload.dir/ocean.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/radix.cc.o"
  "CMakeFiles/ascoma_workload.dir/radix.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/synthetic.cc.o"
  "CMakeFiles/ascoma_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/ascoma_workload.dir/workload.cc.o"
  "CMakeFiles/ascoma_workload.dir/workload.cc.o.d"
  "libascoma_workload.a"
  "libascoma_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
