file(REMOVE_RECURSE
  "libascoma_workload.a"
)
