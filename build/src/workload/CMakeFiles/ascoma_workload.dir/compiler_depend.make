# Empty compiler generated dependencies file for ascoma_workload.
# This may be replaced when dependencies are built.
