file(REMOVE_RECURSE
  "CMakeFiles/ascoma_vm.dir/home_map.cc.o"
  "CMakeFiles/ascoma_vm.dir/home_map.cc.o.d"
  "CMakeFiles/ascoma_vm.dir/page_cache.cc.o"
  "CMakeFiles/ascoma_vm.dir/page_cache.cc.o.d"
  "CMakeFiles/ascoma_vm.dir/page_table.cc.o"
  "CMakeFiles/ascoma_vm.dir/page_table.cc.o.d"
  "CMakeFiles/ascoma_vm.dir/pageout_daemon.cc.o"
  "CMakeFiles/ascoma_vm.dir/pageout_daemon.cc.o.d"
  "libascoma_vm.a"
  "libascoma_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
