# Empty dependencies file for ascoma_vm.
# This may be replaced when dependencies are built.
