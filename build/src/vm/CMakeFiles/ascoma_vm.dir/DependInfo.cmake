
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/home_map.cc" "src/vm/CMakeFiles/ascoma_vm.dir/home_map.cc.o" "gcc" "src/vm/CMakeFiles/ascoma_vm.dir/home_map.cc.o.d"
  "/root/repo/src/vm/page_cache.cc" "src/vm/CMakeFiles/ascoma_vm.dir/page_cache.cc.o" "gcc" "src/vm/CMakeFiles/ascoma_vm.dir/page_cache.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/vm/CMakeFiles/ascoma_vm.dir/page_table.cc.o" "gcc" "src/vm/CMakeFiles/ascoma_vm.dir/page_table.cc.o.d"
  "/root/repo/src/vm/pageout_daemon.cc" "src/vm/CMakeFiles/ascoma_vm.dir/pageout_daemon.cc.o" "gcc" "src/vm/CMakeFiles/ascoma_vm.dir/pageout_daemon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
