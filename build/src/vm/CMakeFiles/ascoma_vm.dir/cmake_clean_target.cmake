file(REMOVE_RECURSE
  "libascoma_vm.a"
)
