file(REMOVE_RECURSE
  "CMakeFiles/ascoma_core.dir/machine.cc.o"
  "CMakeFiles/ascoma_core.dir/machine.cc.o.d"
  "CMakeFiles/ascoma_core.dir/sweep.cc.o"
  "CMakeFiles/ascoma_core.dir/sweep.cc.o.d"
  "libascoma_core.a"
  "libascoma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
