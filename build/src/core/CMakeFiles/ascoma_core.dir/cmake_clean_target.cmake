file(REMOVE_RECURSE
  "libascoma_core.a"
)
