# Empty dependencies file for ascoma_core.
# This may be replaced when dependencies are built.
