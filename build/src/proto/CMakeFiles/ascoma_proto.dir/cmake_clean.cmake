file(REMOVE_RECURSE
  "CMakeFiles/ascoma_proto.dir/coherent_memory.cc.o"
  "CMakeFiles/ascoma_proto.dir/coherent_memory.cc.o.d"
  "CMakeFiles/ascoma_proto.dir/directory.cc.o"
  "CMakeFiles/ascoma_proto.dir/directory.cc.o.d"
  "CMakeFiles/ascoma_proto.dir/refetch.cc.o"
  "CMakeFiles/ascoma_proto.dir/refetch.cc.o.d"
  "libascoma_proto.a"
  "libascoma_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
