# Empty dependencies file for ascoma_proto.
# This may be replaced when dependencies are built.
