file(REMOVE_RECURSE
  "libascoma_proto.a"
)
