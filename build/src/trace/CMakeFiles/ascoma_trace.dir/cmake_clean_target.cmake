file(REMOVE_RECURSE
  "libascoma_trace.a"
)
