file(REMOVE_RECURSE
  "CMakeFiles/ascoma_trace.dir/trace.cc.o"
  "CMakeFiles/ascoma_trace.dir/trace.cc.o.d"
  "libascoma_trace.a"
  "libascoma_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
