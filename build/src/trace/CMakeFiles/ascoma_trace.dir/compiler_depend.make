# Empty compiler generated dependencies file for ascoma_trace.
# This may be replaced when dependencies are built.
