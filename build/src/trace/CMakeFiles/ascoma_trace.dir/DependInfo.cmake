
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/ascoma_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/ascoma_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ascoma_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
