file(REMOVE_RECURSE
  "libascoma_common.a"
)
