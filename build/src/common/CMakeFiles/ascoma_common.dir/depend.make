# Empty dependencies file for ascoma_common.
# This may be replaced when dependencies are built.
