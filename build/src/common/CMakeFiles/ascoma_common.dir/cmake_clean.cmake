file(REMOVE_RECURSE
  "CMakeFiles/ascoma_common.dir/config.cc.o"
  "CMakeFiles/ascoma_common.dir/config.cc.o.d"
  "CMakeFiles/ascoma_common.dir/stats.cc.o"
  "CMakeFiles/ascoma_common.dir/stats.cc.o.d"
  "CMakeFiles/ascoma_common.dir/table.cc.o"
  "CMakeFiles/ascoma_common.dir/table.cc.o.d"
  "libascoma_common.a"
  "libascoma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
