file(REMOVE_RECURSE
  "libascoma_net.a"
)
