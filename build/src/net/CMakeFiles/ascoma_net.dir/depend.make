# Empty dependencies file for ascoma_net.
# This may be replaced when dependencies are built.
