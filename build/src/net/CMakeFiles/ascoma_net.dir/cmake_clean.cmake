file(REMOVE_RECURSE
  "CMakeFiles/ascoma_net.dir/network.cc.o"
  "CMakeFiles/ascoma_net.dir/network.cc.o.d"
  "CMakeFiles/ascoma_net.dir/topology.cc.o"
  "CMakeFiles/ascoma_net.dir/topology.cc.o.d"
  "libascoma_net.a"
  "libascoma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
