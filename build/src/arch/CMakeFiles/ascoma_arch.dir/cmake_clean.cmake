file(REMOVE_RECURSE
  "CMakeFiles/ascoma_arch.dir/ascoma.cc.o"
  "CMakeFiles/ascoma_arch.dir/ascoma.cc.o.d"
  "CMakeFiles/ascoma_arch.dir/ccnuma.cc.o"
  "CMakeFiles/ascoma_arch.dir/ccnuma.cc.o.d"
  "CMakeFiles/ascoma_arch.dir/policy.cc.o"
  "CMakeFiles/ascoma_arch.dir/policy.cc.o.d"
  "CMakeFiles/ascoma_arch.dir/rnuma.cc.o"
  "CMakeFiles/ascoma_arch.dir/rnuma.cc.o.d"
  "CMakeFiles/ascoma_arch.dir/scoma.cc.o"
  "CMakeFiles/ascoma_arch.dir/scoma.cc.o.d"
  "CMakeFiles/ascoma_arch.dir/storage.cc.o"
  "CMakeFiles/ascoma_arch.dir/storage.cc.o.d"
  "CMakeFiles/ascoma_arch.dir/vcnuma.cc.o"
  "CMakeFiles/ascoma_arch.dir/vcnuma.cc.o.d"
  "libascoma_arch.a"
  "libascoma_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
