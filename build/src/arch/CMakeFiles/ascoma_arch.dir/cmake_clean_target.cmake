file(REMOVE_RECURSE
  "libascoma_arch.a"
)
