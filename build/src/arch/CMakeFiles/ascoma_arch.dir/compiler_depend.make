# Empty compiler generated dependencies file for ascoma_arch.
# This may be replaced when dependencies are built.
