
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/ascoma.cc" "src/arch/CMakeFiles/ascoma_arch.dir/ascoma.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/ascoma.cc.o.d"
  "/root/repo/src/arch/ccnuma.cc" "src/arch/CMakeFiles/ascoma_arch.dir/ccnuma.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/ccnuma.cc.o.d"
  "/root/repo/src/arch/policy.cc" "src/arch/CMakeFiles/ascoma_arch.dir/policy.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/policy.cc.o.d"
  "/root/repo/src/arch/rnuma.cc" "src/arch/CMakeFiles/ascoma_arch.dir/rnuma.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/rnuma.cc.o.d"
  "/root/repo/src/arch/scoma.cc" "src/arch/CMakeFiles/ascoma_arch.dir/scoma.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/scoma.cc.o.d"
  "/root/repo/src/arch/storage.cc" "src/arch/CMakeFiles/ascoma_arch.dir/storage.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/storage.cc.o.d"
  "/root/repo/src/arch/vcnuma.cc" "src/arch/CMakeFiles/ascoma_arch.dir/vcnuma.cc.o" "gcc" "src/arch/CMakeFiles/ascoma_arch.dir/vcnuma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ascoma_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
