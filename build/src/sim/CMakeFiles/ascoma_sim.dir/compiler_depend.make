# Empty compiler generated dependencies file for ascoma_sim.
# This may be replaced when dependencies are built.
