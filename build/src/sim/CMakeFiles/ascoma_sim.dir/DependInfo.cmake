
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/barrier.cc" "src/sim/CMakeFiles/ascoma_sim.dir/barrier.cc.o" "gcc" "src/sim/CMakeFiles/ascoma_sim.dir/barrier.cc.o.d"
  "/root/repo/src/sim/lock.cc" "src/sim/CMakeFiles/ascoma_sim.dir/lock.cc.o" "gcc" "src/sim/CMakeFiles/ascoma_sim.dir/lock.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/sim/CMakeFiles/ascoma_sim.dir/resource.cc.o" "gcc" "src/sim/CMakeFiles/ascoma_sim.dir/resource.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/ascoma_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/ascoma_sim.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ascoma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
