file(REMOVE_RECURSE
  "CMakeFiles/ascoma_sim.dir/barrier.cc.o"
  "CMakeFiles/ascoma_sim.dir/barrier.cc.o.d"
  "CMakeFiles/ascoma_sim.dir/lock.cc.o"
  "CMakeFiles/ascoma_sim.dir/lock.cc.o.d"
  "CMakeFiles/ascoma_sim.dir/resource.cc.o"
  "CMakeFiles/ascoma_sim.dir/resource.cc.o.d"
  "CMakeFiles/ascoma_sim.dir/scheduler.cc.o"
  "CMakeFiles/ascoma_sim.dir/scheduler.cc.o.d"
  "libascoma_sim.a"
  "libascoma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascoma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
