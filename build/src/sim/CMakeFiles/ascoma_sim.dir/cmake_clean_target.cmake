file(REMOVE_RECURSE
  "libascoma_sim.a"
)
