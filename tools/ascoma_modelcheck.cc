// ascoma_modelcheck — exhaustive message-interleaving checker for the
// coherence protocol's transition table (src/check/).
//
// Explores every reachable state of a small model configuration and checks
// SWMR, data-value, directory/owner agreement, memory currency, deadlock
// freedom, and bounded-retry liveness.  On violation, prints (and optionally
// writes) a minimal counterexample trace and exits 1.  Run it before and
// after any change to src/proto/transition_table.cc — CI does.
//
// Exit codes: 0 = all invariants hold; 1 = violation found; 2 = usage error
// or search truncated (state cap hit before the space was exhausted).
//
// Examples:
//   ascoma_modelcheck --nodes 2 --blocks 1 --ops 2 --arch all
//   ascoma_modelcheck --nodes 3 --blocks 2 --ops 2 --faults
//   ascoma_modelcheck --mutation stale-owner-on-downgrade   # must report

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/explorer.hh"
#include "check/model.hh"
#include "common/config.hh"

namespace {

using ascoma::ArchModel;
namespace check = ascoma::check;

void usage(std::ostream& os) {
  os << "usage: ascoma_modelcheck [options]\n"
        "  --nodes N          nodes in the model, 2..4 (default 2)\n"
        "  --blocks N         coherence blocks, 1..2 (default 1)\n"
        "  --ops N            loads/stores per node, 1..4 (default 2)\n"
        "  --arch NAME|all    ccnuma|scoma|rnuma|vcnuma|ascoma|all "
        "(default ascoma)\n"
        "  --faults           enable drop/dup/NACK fault rules\n"
        "  --mutation NAME    check a known-bad protocol mutation\n"
        "                     (none|drop-inval-ack|stale-owner-on-downgrade|\n"
        "                      nack-mutates-directory|lost-upgrade|"
        "double-data-reply)\n"
        "  --dfs              depth-first search (default: BFS, minimal "
        "traces)\n"
        "  --no-por           disable partial-order reduction\n"
        "  --max-states N     visited-state cap (default 2000000)\n"
        "  --trace-out PATH   write the counterexample trace to PATH\n"
        "  --quiet            print verdict lines only\n";
}

struct Args {
  check::CheckConfig cfg;
  bool all_archs = false;
  check::ExploreOptions opts;
  std::string trace_out;
  bool quiet = false;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg == "--nodes") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.nodes = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--blocks") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.blocks = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--ops") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.ops_per_node = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--arch") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::string(v) == "all") {
        a->all_archs = true;
      } else if (!ascoma::parse_arch_model(v, &a->cfg.arch)) {
        std::cerr << "unknown architecture: " << v << "\n";
        return false;
      }
    } else if (arg == "--faults") {
      a->cfg.faults = true;
    } else if (arg == "--mutation") {
      const char* v = value();
      if (v == nullptr) return false;
      if (!check::parse_mutation(v, &a->cfg.mutation)) {
        std::cerr << "unknown mutation: " << v << "\n";
        return false;
      }
    } else if (arg == "--dfs") {
      a->opts.dfs = true;
    } else if (arg == "--no-por") {
      a->opts.por = false;
    } else if (arg == "--max-states") {
      const char* v = value();
      if (v == nullptr) return false;
      a->opts.max_states = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return false;
      a->trace_out = v;
    } else if (arg == "--quiet") {
      a->quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, &a)) {
    usage(std::cerr);
    return 2;
  }

  std::vector<ArchModel> archs;
  if (a.all_archs) {
    archs = {ArchModel::kCcNuma, ArchModel::kScoma, ArchModel::kRNuma,
             ArchModel::kVcNuma, ArchModel::kAsComa};
  } else {
    archs = {a.cfg.arch};
  }

  int worst = 0;
  for (ArchModel arch : archs) {
    check::CheckConfig cfg = a.cfg;
    cfg.arch = arch;
    check::Model model(cfg);
    const check::ExploreResult res = check::explore(model, a.opts);

    std::cout << "[" << ascoma::to_string(arch) << "] nodes=" << cfg.nodes
              << " blocks=" << cfg.blocks << " ops=" << cfg.ops_per_node
              << " faults=" << (cfg.faults ? "on" : "off")
              << " mutation=" << check::to_string(cfg.mutation) << "\n";
    if (a.quiet) {
      std::cout << (res.ok ? (res.truncated ? "INCONCLUSIVE" : "PASS")
                           : "VIOLATION")
                << ": " << res.states << " states\n";
      if (!res.ok) std::cout << "  " << res.violation << "\n";
    } else {
      std::cout << res.report();
    }

    if (!res.ok && !a.trace_out.empty()) {
      std::ofstream out(a.trace_out);
      if (!out) {
        std::cerr << "cannot write " << a.trace_out << "\n";
        return 2;
      }
      out << "ascoma_modelcheck counterexample\n"
          << "arch=" << ascoma::to_string(arch) << " nodes=" << cfg.nodes
          << " blocks=" << cfg.blocks << " ops=" << cfg.ops_per_node
          << " faults=" << (cfg.faults ? "on" : "off")
          << " mutation=" << check::to_string(cfg.mutation) << "\n\n"
          << res.report();
      std::cout << "counterexample written to " << a.trace_out << "\n";
    }

    if (!res.ok)
      worst = std::max(worst, 1);
    else if (res.truncated)
      worst = std::max(worst, 2);
  }
  return worst;
}
