// ascoma_prof_diff — compare two profile dumps produced by `ascoma
// --profile` (or Profiler::write_profile) and flag latency regressions.
//
//   ascoma_prof_diff BASELINE_DIR CANDIDATE_DIR [options]
//
// Options:
//   --p99-tol F      relative p99 growth that fails the gate (default 0.10)
//   --mean-tol F     relative mean growth that fails the gate (default 0.10)
//   --min-cycles N   absolute growth floor in cycles (default 16)
//   --min-count N    minimum samples per side to compare a row (default 100)
//
// Exit status: 0 when no row regressed, 1 on regressions, 2 on usage or
// unreadable/malformed dumps — so CI can gate directly on the tool.

#include <charconv>
#include <iostream>
#include <string>

#include "prof/diff.hh"

using ascoma::prof::DiffOptions;
using ascoma::prof::DiffReport;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << '\n';
  std::cerr << "usage: ascoma_prof_diff BASELINE_DIR CANDIDATE_DIR"
               " [--p99-tol F] [--mean-tol F]\n"
               "                        [--min-cycles N] [--min-count N]\n";
  std::exit(2);
}

template <typename T>
T parse_number(const std::string& s, const char* what) {
  T value{};
  const auto r = std::from_chars(s.data(), s.data() + s.size(), value);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size())
    usage(std::string("bad value for ") + what + ": '" + s + "'");
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline, candidate;
  DiffOptions opts;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--p99-tol") {
      opts.p99_tol = parse_number<double>(need_value(i), "--p99-tol");
    } else if (a == "--mean-tol") {
      opts.mean_tol = parse_number<double>(need_value(i), "--mean-tol");
    } else if (a == "--min-cycles") {
      opts.min_cycles =
          parse_number<std::uint64_t>(need_value(i), "--min-cycles");
    } else if (a == "--min-count") {
      opts.min_count =
          parse_number<std::uint64_t>(need_value(i), "--min-count");
    } else if (a == "--help" || a == "-h") {
      usage();
    } else if (!a.empty() && a[0] == '-') {
      usage("unknown option: " + a);
    } else if (baseline.empty()) {
      baseline = a;
    } else if (candidate.empty()) {
      candidate = a;
    } else {
      usage("too many positional arguments");
    }
  }
  if (baseline.empty() || candidate.empty())
    usage("need a baseline and a candidate profile directory");

  const DiffReport rep = ascoma::prof::diff_profiles(baseline, candidate, opts);
  ascoma::prof::write_report(std::cout, rep, opts);
  if (!rep.ok()) return 2;
  return rep.regressions() > 0 ? 1 : 0;
}
