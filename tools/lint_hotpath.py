#!/usr/bin/env python3
"""Hot-path & determinism static fence (ARCHITECTURE.md §17; CI runs this
on every push, before the build).

The simulator core is annotated with the zero-cost attributes from
src/common/annotate.hh; this tool builds a call graph over src/ and walks
it transitively from every annotated root, enforcing:

R1 (ASCOMA_HOT_PATH) — no heap allocation reachable: no new/malloc, no
   allocating-container growth (push_back/emplace/insert/resize/...), no
   string building.  Reasoned exemptions live in HOT_ALLOC_BOUNDARY;
   [[noreturn]] functions are cold by declaration and never entered.
   ASCOMA_CHECK/ASCOMA_CHECK_MSG invocations are stripped before scanning —
   they build their message only on the failure branch.

R2 (ASCOMA_SIGNAL_SAFE) — async-signal context: no mutexes, no <iostream>
   or stdio, no throw, no allocation.  Lock-free atomics and std::signal
   are the only sanctioned primitives.

R3 (ASCOMA_DETERMINISM_SENSITIVE) — code feeding a bit-reproducible
   artifact (golden CSV, event stream, checkpoint codec) must not iterate
   unordered containers or order by pointer keys, except through
   DETERMINISM_BOUNDARY functions that sort before emitting.

R4 (seeded-RNG boundary) — no rand/random_device/host-clock use anywhere
   in src/ outside the files in RNG_BOUNDARY_FILES: simulated behaviour may
   only draw randomness from the seeded RNG (src/common/rng.hh) and may
   never read host time.

Two front ends, same findings format: libclang over
build/compile_commands.json when the python bindings are importable
(AST-accurate annotation discovery and call edges), else a regex fallback
that parses the macro tokens and resolves callees by simple name with
receiver-type hints (member/param/local declarations) plus an inheritance
map for virtual dispatch.  The finding set is a zero baseline — any new
finding fails.

Usage: tools/lint_hotpath.py [repo-root]    (exit 0 clean, 1 findings,
       tools/lint_hotpath.py --self-test     2 usage/internal error)
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from lint_common import iter_sources, load_libclang, repo_root, strip_comments

ANNOTATIONS = {
    "ASCOMA_HOT_PATH": "hot_path",
    "ASCOMA_SIGNAL_SAFE": "signal_safe",
    "ASCOMA_DETERMINISM_SENSITIVE": "determinism_sensitive",
}
CLANG_TAGS = {  # [[clang::annotate("...")]] spellings (libclang front end)
    "ascoma::hot_path": "hot_path",
    "ascoma::signal_safe": "signal_safe",
    "ascoma::determinism_sensitive": "determinism_sensitive",
}

# ---- reasoned exemptions ----------------------------------------------------
# Same contract as lint_types' CAST_BOUNDARY_FILES: every entry needs a
# justification of the same kind, and the traversal stops at the boundary
# (the function's body and callees are trusted, not scanned).

HOT_ALLOC_BOUNDARY = {
    # ring buffer reserve()d at construction; full buffer drops, never grows
    "EventSink::emit",
    # telemetry samples, rate-limited by the Sampler period; amortized vector
    "EventSink::add_sample",
    # activity bitmap pre-sized by reserve_pages() at machine setup
    "PageCache::add_active",
    # setup-time sizing; no-op on the fault path once pre-sized
    "PageCache::reserve_pages",
    # push_back bounded by capacity (double release is a checked failure)
    "PageCache::release",
    # clock-hand rotation: pop_front/push_back pair, no net deque growth
    "PageCache::rotate",
    # cold growth for direct-construction tests; pre-sized in simulator runs
    # (VcNumaPolicy::grow_for is only called from the un-fenced step loop)
    "AsComaPolicy::grow_for",
    # watchdog diagnostics: reached only after the expiry guard fired
    "CoherentMemory::check_watchdog",
}

SIGNAL_BOUNDARY = set()  # nothing exempted: the handler must stay primitive

DETERMINISM_BOUNDARY = {
    # collects the unordered map's lock ids and sorts before emitting
    "LockTable::encode",
}

# The only files allowed to touch host randomness/time: the seeded RNG and
# the host-side telemetry that never feeds simulated state.
RNG_BOUNDARY_FILES = {
    "src/common/rng.hh",      # the seeded RNG implementation itself
    "src/selfprof/clock.hh",  # self-profiler wall clock (host telemetry)
    "src/selfprof/clock.cc",  # TSC-tick -> nanosecond calibration
    "src/core/sweep.cc",      # wall-time ETA / sim-rate telemetry
}

# ---- forbidden-token tables -------------------------------------------------

ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"                      # new T / new T[] (not a macro arg)
    r"|\b(?:malloc|calloc|realloc|strdup)\s*\("
    r"|\bmake_(?:unique|shared)\b"
    r"|(?:\.|->)(?:push_back|push_front|emplace_back|emplace_front|emplace"
    r"|insert|resize|reserve|assign|append)\s*\("
    r"|\bstd::to_string\s*\("
    r"|\bstd::string\s*[({]"
    r"|\bstd::(?:vector|deque|map|set|unordered_map|unordered_set|list"
    r"|string)\s*<[^;=]*>\s+\w+\s*[;({=]"     # allocating-container local
)

SIGNAL_RE = re.compile(
    r"\b(?:std::)?(?:mutex|recursive_mutex|shared_mutex|lock_guard"
    r"|unique_lock|scoped_lock|condition_variable)\b"
    r"|\bthrow\b"
    r"|\b(?:printf|fprintf|puts|fputs|fwrite|fopen|snprintf)\s*\("
    r"|\bstd::c(?:out|err|log)\b"
)

RNG_RE = re.compile(
    r"\bstd::chrono\b|\brandom_device\b|\bmt19937\b|\bstd::rand\b"
    r"|\bsrand\s*\(|\brand\s*\(\s*\)"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
)

CHECK_MACRO_RE = re.compile(r"\bASCOMA_CHECK(?:_MSG)?\s*\(")

NOT_FUNC_NAMES = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "else", "do", "new", "delete", "defined",
    "assert", "ASCOMA_CHECK", "ASCOMA_CHECK_MSG", "ASCOMA_ANNOTATE",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "noexcept", "alignas", "explicit", "operator",
}

UPPER_ID_RE = re.compile(r"\b([A-Z]\w*)\b")

# Method names shared with the standard library: a receiver call on one of
# these never resolves by simple name alone (ptr.reset() is not
# SweepStatusBoard::reset) — it needs a receiver-type hint.
GENERIC_METHODS = {
    "reset", "clear", "size", "empty", "load", "store", "insert", "erase",
    "find", "count", "at", "get", "release", "value", "str", "c_str",
    "begin", "end", "front", "back", "data", "swap", "first", "second",
    "push", "pop", "top", "test", "set", "fill", "min", "max", "exchange",
    "fetch_add", "fetch_sub", "lock", "unlock", "wait", "run", "apply",
    "emit", "add", "done", "tick", "next", "name", "id", "index",
}


def strip_check_macros(text: str) -> str:
    """Remove ASCOMA_CHECK*(...) invocations (balanced parens) — their
    message building runs only on the failure branch."""
    out = []
    pos = 0
    while True:
        m = CHECK_MACRO_RE.search(text, pos)
        if m is None:
            out.append(text[pos:])
            return "".join(out)
        out.append(text[pos:m.start()])
        depth = 0
        i = m.end() - 1  # at the '('
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        out.append(";")
        pos = i + 1


def match_brace(text: str, open_idx: int) -> int:
    """Index of the '}' matching the '{' at open_idx (len(text) if
    unbalanced)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


CLASS_RE = re.compile(r"\b(?:class|struct)\s+([\w:]+)\s*(?:final\s*)?"
                      r"(?::\s*[^{;]+)?\{")
INHERIT_RE = re.compile(r"\b(?:class|struct)\s+([\w:]+)\s*(?:final\s*)?:\s*"
                        r"(?:public|protected|private)?\s*(?:virtual\s+)?"
                        r"([\w:]+)")
MEMBER_RE = re.compile(
    r"(?:^|[;{}])\s*(?:mutable\s+|static\s+|constexpr\s+)*"
    r"((?:const\s+)?[\w:]+(?:<[^;()]*?>)?\s*[&\*]?)\s+"
    r"([a-z_]\w*)\s*(?:=[^;]*|\{[^;{}]*\})?;", re.M)
FUNC_NAME_RE = re.compile(r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
LOCAL_RE = re.compile(
    r"\b((?:[\w]+::)*[A-Z]\w*)(?:<[^;=]*?>)?\s*[&\*]?\s+([a-z]\w*)\s*[=;(]")
RECEIVER_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
QUALIFIED_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)::([A-Za-z_]\w*)\s*\(")
BARE_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")
RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*(?:\*?)([a-z_]\w*)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b([a-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\(\)")


def last_class_hint(type_text: str):
    """The receiver-class heuristic: last uppercase identifier in a
    declared type (unique_ptr<vm::PageoutDaemon> -> PageoutDaemon)."""
    ids = UPPER_ID_RE.findall(type_text)
    return ids[-1] if ids else None


class Function:
    def __init__(self, qual, rel, line, body, prefix):
        self.qual = qual          # "Class::name" or "name"
        self.rel = rel            # repo-relative file
        self.line = line          # 1-based line of the definition
        self.body = body          # body text, checks stripped
        self.prefix = prefix      # declaration text before the name
        self.callees = []         # resolved qualified names
        self.param_hints = {}     # param name -> class hint


class Model:
    """Everything the rules need, built once per tree."""

    def __init__(self):
        self.defs = {}            # qual -> Function
        self.by_simple = {}       # simple name -> [qual]
        self.roots = {}           # kind -> set of qualified names
        self.cold = set()         # [[noreturn]] qualified names
        self.subclasses = {}      # base simple name -> set of derived
        self.member_types = {}    # member name -> (hint, full type text)


def class_spans(text):
    """[(open, close, simple_name)] for every class/struct body."""
    spans = []
    for m in CLASS_RE.finditer(text):
        open_idx = m.end() - 1
        spans.append((open_idx, match_brace(text, open_idx),
                      m.group(1).split("::")[-1]))
    return spans


def enclosing_class(spans, offset):
    best = None
    for open_idx, close_idx, name in spans:
        if open_idx < offset < close_idx:
            if best is None or open_idx > best[0]:
                best = (open_idx, name)
    return best[1] if best else None


def body_start(text, close_paren):
    """Offset of the definition body '{' after the parameter list's ')',
    skipping trailing qualifiers and a constructor init list; None when the
    match is a declaration or call."""
    i = close_paren + 1
    n = len(text)
    while i < n:
        rest = text[i:i + 32]
        m = re.match(r"\s*(const|noexcept|override|final|mutable)\b", rest)
        if m:
            i += m.end()
            continue
        m = re.match(r"\s*->\s*[\w:<>,\s&\*]+", rest)
        if m and "{" not in m.group(0):
            i += m.end()
            continue
        break
    while i < n and text[i].isspace():
        i += 1
    if i >= n:
        return None
    if text[i] == "{":
        return i
    if text[i] != ":":
        return None
    # Constructor init list: the body '{' is the first brace at paren depth
    # 0 whose previous non-space char is not part of a brace-initializer
    # head (identifier or '>').
    depth = 0
    j = i + 1
    while j < n:
        c = text[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ";":
            return None
        elif c == "{" and depth == 0:
            k = j - 1
            while k >= 0 and text[k].isspace():
                k -= 1
            if k >= 0 and (text[k].isalnum() or text[k] in "_>"):
                j = match_brace(text, j)  # skip the brace initializer
            else:
                return j
        j += 1
    return None


def parse_params(text, open_paren):
    """{param name: class hint} for the parameter list at open_paren;
    returns (hints, close_paren index)."""
    depth = 0
    i = open_paren
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    inner = text[open_paren + 1:i]
    hints = {}
    part, angle, paren = [], 0, 0
    parts = []
    for c in inner:
        if c == "<":
            angle += 1
        elif c == ">":
            angle -= 1
        elif c == "(":
            paren += 1
        elif c == ")":
            paren -= 1
        if c == "," and angle == 0 and paren == 0:
            parts.append("".join(part))
            part = []
        else:
            part.append(c)
    parts.append("".join(part))
    for p in parts:
        m = re.search(r"([A-Za-z_]\w*)\s*(?:=[^,]*)?$", p.strip())
        if m is None:
            continue
        hint = last_class_hint(p[:m.start()])
        if hint:
            hints[m.group(1)] = hint
    return hints, i


def build_model(root: Path) -> Model:
    model = Model()
    per_file = []  # (rel, text, spans)
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel == "src/common/annotate.hh":
            continue  # defines the macros; never a root or a finding
        text = strip_comments(path.read_text())
        spans = class_spans(text)
        per_file.append((rel, text, spans))
        for m in INHERIT_RE.finditer(text):
            base = m.group(2).split("::")[-1]
            model.subclasses.setdefault(base, set()).add(
                m.group(1).split("::")[-1])
        for open_idx, close_idx, cls in spans:
            body = text[open_idx + 1:close_idx]
            for mm in MEMBER_RE.finditer(body):
                if "(" in mm.group(1):
                    continue
                # hint may be None (std:: container of builtins); the
                # determinism rule still needs the declared type text.
                model.member_types.setdefault(
                    mm.group(2), (last_class_hint(mm.group(1)), mm.group(1)))

    for rel, text, spans in per_file:
        # Annotation roots and [[noreturn]] cold marks: resolve the macro /
        # attribute token forward to the function name it precedes.
        for token, kind in list(ANNOTATIONS.items()) + [("[[noreturn]]", None)]:
            start = 0
            while True:
                idx = text.find(token, start)
                if idx < 0:
                    break
                start = idx + len(token)
                seg_end = text.find("(", start)
                if seg_end < 0:
                    break
                m = re.search(r"(~?[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*$",
                              text[start:seg_end])
                if m is None:
                    continue
                name = m.group(1)
                if "::" not in name:
                    cls = enclosing_class(spans, idx)
                    if cls:
                        name = f"{cls}::{name}"
                if kind is None:
                    model.cold.add(name)
                else:
                    model.roots.setdefault(kind, set()).add(name)

        # Function definitions (top-level only: matches inside a found body
        # are calls/lambdas and belong to the enclosing definition).
        pos = 0
        while True:
            m = FUNC_NAME_RE.search(text, pos)
            if m is None:
                break
            name = re.sub(r"\s+", "", m.group(1))
            simple = name.split("::")[-1]
            if simple in NOT_FUNC_NAMES or name.split("::")[0] in ("std",):
                pos = m.end()
                continue
            prev = text[:m.start()].rstrip()
            if prev.endswith(".") or prev.endswith("->"):
                pos = m.end()  # member access, not a definition
                continue
            hints, close_paren = parse_params(text, m.end() - 1)
            bstart = body_start(text, close_paren)
            if bstart is None:
                pos = m.end()
                continue
            bend = match_brace(text, bstart)
            qual = name
            if "::" not in qual:
                cls = enclosing_class(spans, m.start())
                if cls:
                    qual = f"{cls}::{qual}"
            else:
                qual = "::".join(qual.split("::")[-2:])
            line = text.count("\n", 0, m.start()) + 1
            prefix_start = max(text.rfind(";", 0, m.start()),
                               text.rfind("}", 0, m.start()),
                               text.rfind("{", 0, m.start()))
            fn = Function(qual, rel, line,
                          strip_check_macros(text[bstart + 1:bend]),
                          text[prefix_start + 1:m.start()])
            fn.param_hints = hints
            if qual not in model.defs:  # first definition wins (overloads
                model.defs[qual] = fn   # share one rule surface)
            else:
                model.defs[qual].body += "\n" + fn.body
            model.by_simple.setdefault(qual.split("::")[-1], [])
            if qual not in model.by_simple[qual.split("::")[-1]]:
                model.by_simple[qual.split("::")[-1]].append(qual)
            pos = bend + 1

    resolve_calls(model)
    return model


def all_subclasses(model: Model, cls: str):
    out, work = set(), [cls]
    while work:
        c = work.pop()
        for d in model.subclasses.get(c, ()):
            if d not in out:
                out.add(d)
                work.append(d)
    return out


def resolve_calls(model: Model):
    for fn in model.defs.values():
        callees = set()
        local_hints = dict(fn.param_hints)
        for m in LOCAL_RE.finditer(fn.body):
            local_hints.setdefault(m.group(2), m.group(1).split("::")[-1])
        own_class = fn.qual.split("::")[0] if "::" in fn.qual else None

        def by_class_hint(cls, method):
            cands = []
            for c in [cls] + sorted(all_subclasses(model, cls)):
                q = f"{c}::{method}"
                if q in model.defs:
                    cands.append(q)
            return cands

        # Precision over recall: an ambiguous call with no usable type hint
        # is dropped rather than fanned out to every same-named method —
        # the libclang front end resolves those exactly.
        for m in RECEIVER_CALL_RE.finditer(fn.body):
            recv, method = m.group(1), m.group(2)
            matches = model.by_simple.get(method, [])
            if not matches:
                continue
            if recv == "this":
                hint = own_class
            else:
                hint = local_hints.get(recv) or \
                    (model.member_types.get(recv) or (None,))[0]
            if hint:
                callees.update(by_class_hint(hint, method))
            elif len(matches) == 1 and method not in GENERIC_METHODS:
                callees.add(matches[0])
        for m in QUALIFIED_CALL_RE.finditer(fn.body):
            q = f"{m.group(1)}::{m.group(2)}"
            if q in model.defs:
                callees.add(q)
        for m in BARE_CALL_RE.finditer(fn.body):
            name = m.group(1)
            if name in NOT_FUNC_NAMES:
                continue
            matches = model.by_simple.get(name, [])
            if len(matches) == 1:
                callees.add(matches[0])
            elif matches and own_class:
                callees.update(by_class_hint(own_class, name))
        fn.callees = sorted(callees - {fn.qual})


# ---- rule walks -------------------------------------------------------------


def finding_site(fn: Function, match: re.Match) -> str:
    line = fn.line + fn.body.count("\n", 0, match.start())
    return f"{fn.rel}:{line}"


def walk(model: Model, kind: str, boundary, scan):
    """BFS from the `kind` roots; `scan(fn, path)` appends findings for one
    visited function."""
    findings = []
    for root in sorted(model.roots.get(kind, ())):
        seen = set()
        work = [(root, [root])]
        while work:
            qual, path = work.pop()
            if qual in seen or qual in boundary or qual in model.cold:
                continue
            seen.add(qual)
            fn = model.defs.get(qual)
            if fn is None:
                continue  # annotated declaration without a parsed body
            scan(fn, path, findings)
            for callee in fn.callees:
                if callee not in seen:
                    work.append((callee, path + [callee]))
    # One finding per (site, rule), even when reachable from several roots.
    uniq, out = set(), []
    for f in findings:
        key = f.split(" via ")[0]
        if key not in uniq:
            uniq.add(key)
            out.append(f)
    return out


def lint_hot_alloc(model: Model):
    def scan(fn, path, findings):
        for m in ALLOC_RE.finditer(fn.body):
            findings.append(
                f"{finding_site(fn, m)}: [hot-path] allocation "
                f"'{m.group(0).strip().rstrip('(').lstrip('.->')}' reachable from "
                f"ASCOMA_HOT_PATH root '{path[0]}' via {' -> '.join(path)} — "
                f"hoist it off the hot path, mark the helper [[noreturn]] if "
                f"it is a cold failure, or add a HOT_ALLOC_BOUNDARY entry "
                f"with a reason")
    return walk(model, "hot_path", HOT_ALLOC_BOUNDARY, scan)


def lint_signal_safe(model: Model):
    def scan(fn, path, findings):
        for m in SIGNAL_RE.finditer(fn.body):
            findings.append(
                f"{finding_site(fn, m)}: [signal-safe] "
                f"'{m.group(0).strip().rstrip('(').lstrip('.->')}' reachable from "
                f"ASCOMA_SIGNAL_SAFE root '{path[0]}' via "
                f"{' -> '.join(path)} — only lock-free atomics and "
                f"std::signal are async-signal-safe")
        for m in ALLOC_RE.finditer(fn.body):
            findings.append(
                f"{finding_site(fn, m)}: [signal-safe] allocation "
                f"'{m.group(0).strip().rstrip('(').lstrip('.->')}' reachable from "
                f"ASCOMA_SIGNAL_SAFE root '{path[0]}' via "
                f"{' -> '.join(path)} — the heap is not async-signal-safe")
    return walk(model, "signal_safe", SIGNAL_BOUNDARY, scan)


def lint_determinism(model: Model):
    def scan(fn, path, findings):
        iterated = [m.group(1) for m in RANGE_FOR_RE.finditer(fn.body)]
        iterated += [m.group(1) for m in BEGIN_CALL_RE.finditer(fn.body)]
        for name in iterated:
            hint = model.member_types.get(name)
            if hint is None:
                continue
            _, full_type = hint
            if "unordered" in full_type:
                findings.append(
                    f"{fn.rel}:{fn.line}: [determinism] '{fn.qual}' iterates "
                    f"unordered container '{name}' "
                    f"({full_type.strip()}) and is reachable from "
                    f"ASCOMA_DETERMINISM_SENSITIVE root '{path[0]}' via "
                    f"{' -> '.join(path)} — sort before emitting, or add a "
                    f"DETERMINISM_BOUNDARY entry with a reason")
            if re.search(r"(?:map|set)\s*<[^,>]*\*", full_type):
                findings.append(
                    f"{fn.rel}:{fn.line}: [determinism] '{fn.qual}' iterates "
                    f"pointer-keyed container '{name}' — pointer order is "
                    f"not reproducible across runs")
    return walk(model, "determinism_sensitive", DETERMINISM_BOUNDARY, scan)


def lint_rng_boundary(root: Path):
    findings = []
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel in RNG_BOUNDARY_FILES:
            continue
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = RNG_RE.search(line)
            if m:
                findings.append(
                    f"{rel}:{lineno}: [rng-boundary] "
                    f"'{m.group(0).strip()}' outside the seeded-RNG/host-"
                    f"telemetry boundary — draw randomness from "
                    f"src/common/rng.hh, or add this file to "
                    f"RNG_BOUNDARY_FILES with a reason")
    return findings


# ---- libclang front end -----------------------------------------------------


def build_model_libclang(root: Path, index, compdb) -> Model:
    """AST-accurate roots and call edges; bodies for rule scanning are
    sliced from the file text so both front ends share one rule surface."""
    from clang import cindex

    model = Model()
    texts = {}
    for entry in compdb:
        src = Path(entry["file"])
        try:
            src.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        args = [a for a in entry["arguments"][1:] if a not in ("-c", "-o")]
        tu = index.parse(str(src), args=args[:-1])
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (cindex.CursorKind.FUNCTION_DECL,
                                cindex.CursorKind.CXX_METHOD,
                                cindex.CursorKind.CONSTRUCTOR,
                                cindex.CursorKind.DESTRUCTOR):
                continue
            loc = cur.location
            if loc.file is None:
                continue
            try:
                rel = Path(loc.file.name).resolve().relative_to(
                    root.resolve()).as_posix()
            except ValueError:
                continue
            if not rel.startswith("src/"):
                continue
            parent = cur.semantic_parent
            qual = cur.spelling
            if parent is not None and parent.kind in (
                    cindex.CursorKind.CLASS_DECL,
                    cindex.CursorKind.STRUCT_DECL):
                qual = f"{parent.spelling}::{cur.spelling}"
            for child in cur.get_children():
                if child.kind == cindex.CursorKind.ANNOTATE_ATTR and \
                        child.spelling in CLANG_TAGS:
                    model.roots.setdefault(
                        CLANG_TAGS[child.spelling], set()).add(qual)
            if "noreturn" in [c.spelling or "" for c in cur.get_children()] \
                    or cur.is_definition() and "[[noreturn]]" in (
                        cur.result_type.spelling or ""):
                model.cold.add(qual)
            if not cur.is_definition() or qual in model.defs:
                continue
            if loc.file.name not in texts:
                texts[loc.file.name] = Path(loc.file.name).read_text()
            text = texts[loc.file.name]
            ext = cur.extent
            body = text[ext.start.offset:ext.end.offset]
            brace = body.find("{")
            fn = Function(qual, rel, loc.line,
                          strip_check_macros(body[brace + 1:-1])
                          if brace >= 0 else "", body[:max(brace, 0)])
            callees = set()
            for sub in cur.walk_preorder():
                if sub.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                ref = sub.referenced
                if ref is None:
                    continue
                cq = ref.spelling
                rp = ref.semantic_parent
                if rp is not None and rp.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    cq = f"{rp.spelling}::{ref.spelling}"
                callees.add(cq)
            fn.callees = sorted(callees - {qual})
            model.defs[qual] = fn
            model.by_simple.setdefault(qual.split("::")[-1], []).append(qual)
    # Member declarations for the determinism rule (textual, same as regex).
    for path in iter_sources(root):
        text = strip_comments(path.read_text())
        for open_idx, close_idx, _ in class_spans(text):
            for mm in MEMBER_RE.finditer(text[open_idx + 1:close_idx]):
                if "(" in mm.group(1):
                    continue
                model.member_types.setdefault(
                    mm.group(2), (last_class_hint(mm.group(1)), mm.group(1)))
    return model


# ---- driver -----------------------------------------------------------------


def run(root: Path):
    ast = load_libclang(root)
    if ast is not None:
        model = build_model_libclang(root, *ast)
        mode = "libclang"
    else:
        model = build_model(root)
        mode = "regex fallback"
    findings = (lint_hot_alloc(model) + lint_signal_safe(model)
                + lint_determinism(model) + lint_rng_boundary(root))
    return findings, mode, model


# ---- self-test --------------------------------------------------------------

FIXTURE_COMMON = {
    "src/common/annotate.hh": """
#define ASCOMA_HOT_PATH
#define ASCOMA_SIGNAL_SAFE
#define ASCOMA_DETERMINISM_SENSITIVE
""",
}

FIXTURE_PRISTINE = {
    **FIXTURE_COMMON,
    "src/sim/core.hh": """
class Engine {
 public:
  ASCOMA_HOT_PATH int step(int x);
  ASCOMA_DETERMINISM_SENSITIVE void save(Encoder& e) const;
  void decode(Decoder& d);
 private:
  int cheap_helper(int x);
  std::vector<int> table_;
};
ASCOMA_SIGNAL_SAFE void on_signal(int sig);
""",
    "src/sim/core.cc": """
int Engine::step(int x) { return cheap_helper(x) + 1; }
int Engine::cheap_helper(int x) { return table_[x]; }
void Engine::save(Encoder& e) const { e.u64(table_.size()); }
void on_signal(int sig) { g_flag.store(sig); }
[[noreturn]] void die(int code) {
  throw std::runtime_error(std::to_string(code));
}
""",
}

FIXTURE_BAD = {
    **FIXTURE_COMMON,
    "src/sim/bad.hh": """
class Engine {
 public:
  ASCOMA_HOT_PATH int step(int x);
  ASCOMA_HOT_PATH int step2(int x);
  ASCOMA_DETERMINISM_SENSITIVE void save(Encoder& e) const;
  void decode(Decoder& d);
  ASCOMA_DETERMINISM_SENSITIVE void save2(Encoder& e) const;
  void decode2(Decoder& d);
 private:
  int deep_helper(int x);
  void dump_members(Encoder& e) const;
  std::vector<int> log_;
  std::unordered_map<int, int> stats_;
};
ASCOMA_SIGNAL_SAFE void on_signal(int sig);
ASCOMA_SIGNAL_SAFE void on_signal2(int sig);
void log_line(const char* msg);
""",
    "src/sim/bad.cc": """
int Engine::step(int x) {
  log_.push_back(x);
  return x;
}
int Engine::step2(int x) { return deep_helper(x); }
int Engine::deep_helper(int x) {
  int* p = new int(x);
  return *p;
}
void Engine::save(Encoder& e) const {
  for (const auto& [k, v] : stats_) e.u64(v);
}
void Engine::save2(Encoder& e) const { dump_members(e); }
void Engine::dump_members(Encoder& e) const {
  for (auto it = stats_.begin(); it != stats_.end(); ++it) e.u64(it->first);
}
void on_signal(int sig) {
  std::mutex m;
  g_flag.store(sig);
}
void on_signal2(int sig) { log_line("caught"); }
void log_line(const char* msg) { fprintf(stderr, "%s", msg); }
""",
    "src/sim/seed.cc": """
unsigned host_entropy() {
  std::random_device rd;
  return rd();
}
""",
    "src/sim/stamp.cc": """
long stamp_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
}

SELF_TEST_EXPECT = [
    # R1 direct and transitive
    ("src/sim/bad.cc", "[hot-path] allocation 'push_back'", "Engine::step"),
    ("src/sim/bad.cc", "[hot-path] allocation 'new'",
     "Engine::step2 -> Engine::deep_helper"),
    # R2 direct and transitive
    ("src/sim/bad.cc", "[signal-safe] 'std::mutex'", "on_signal"),
    ("src/sim/bad.cc", "[signal-safe] 'fprintf'", "on_signal2 -> log_line"),
    # R3 direct (range-for) and transitive (.begin() walk)
    ("src/sim/bad.cc", "[determinism] 'Engine::save' iterates unordered",
     "Engine::save"),
    ("src/sim/bad.cc", "[determinism] 'Engine::dump_members' iterates "
     "unordered", "Engine::save2 -> Engine::dump_members"),
    # R4: host randomness and host time
    ("src/sim/seed.cc", "[rng-boundary] 'random_device'", ""),
    ("src/sim/stamp.cc", "[rng-boundary] 'std::chrono'", ""),
]


def self_test() -> int:
    import tempfile
    from lint_common import write_src_tree

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        good = Path(tmp) / "good"
        write_src_tree(good, FIXTURE_PRISTINE)
        findings, _, model = run(good)
        if findings:
            failures.append(f"pristine fixture not clean: {findings}")
        if len(model.roots.get("hot_path", ())) != 1 or \
                "die" not in model.cold:
            failures.append("pristine fixture parse drift "
                            f"(roots={model.roots}, cold={model.cold})")

        bad = Path(tmp) / "bad"
        write_src_tree(bad, FIXTURE_BAD)
        findings, _, _ = run(bad)
        for rel, token, via in SELF_TEST_EXPECT:
            hit = [f for f in findings
                   if f.startswith(rel) and token in f and via in f]
            if not hit:
                failures.append(f"did not flag: {rel} … {token} … {via}")
        if len(findings) < len(SELF_TEST_EXPECT):
            failures.append(
                f"only {len(findings)} findings on the bad fixture "
                f"(expected >= {len(SELF_TEST_EXPECT)})")

    if failures:
        print("lint_hotpath: SELF-TEST FAILED")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lint_hotpath: self-test OK (pristine fixture clean; all "
          f"{len(SELF_TEST_EXPECT)} seeded violations flagged)")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    if "--self-test" in argv:
        return self_test()
    if len(argv) > 1:
        print(__doc__)
        return 2
    root = repo_root(argv)
    findings, mode, model = run(root)
    for f in findings:
        print(f"lint_hotpath: {f}")
    if findings:
        print(f"lint_hotpath: {len(findings)} finding(s) [{mode}]")
        return 1
    n_roots = sum(len(v) for v in model.roots.values())
    print(f"lint_hotpath: OK [{mode}] ({n_roots} annotated roots; no "
          f"allocation on hot paths, signal handler primitive, determinism-"
          f"sensitive code ordered, host randomness/time fenced)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
