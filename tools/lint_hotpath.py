#!/usr/bin/env python3
"""Hot-path & determinism static fence (ARCHITECTURE.md §17; CI runs this
on every push, before the build).

The simulator core is annotated with the zero-cost attributes from
src/common/annotate.hh; this tool builds a call graph over src/ (the
shared walker in tools/lint_common.py, also used by lint_concurrency.py)
and walks it transitively from every annotated root, enforcing:

R1 (ASCOMA_HOT_PATH) — no heap allocation reachable: no new/malloc, no
   allocating-container growth (push_back/emplace/insert/resize/...), no
   string building.  Reasoned exemptions live in HOT_ALLOC_BOUNDARY;
   [[noreturn]] functions are cold by declaration and never entered.
   ASCOMA_CHECK/ASCOMA_CHECK_MSG invocations are stripped before scanning —
   they build their message only on the failure branch.

R2 (ASCOMA_SIGNAL_SAFE) — async-signal context: no mutexes (std:: or the
   annotated ascoma:: wrappers), no <iostream> or stdio, no throw, no
   allocation.  Lock-free atomics and std::signal are the only sanctioned
   primitives.

R3 (ASCOMA_DETERMINISM_SENSITIVE) — code feeding a bit-reproducible
   artifact (golden CSV, event stream, checkpoint codec) must not iterate
   unordered containers or order by pointer keys, except through
   DETERMINISM_BOUNDARY functions that sort before emitting.

R4 (seeded-RNG boundary) — no rand/random_device/host-clock use anywhere
   in src/ outside the files in RNG_BOUNDARY_FILES: simulated behaviour may
   only draw randomness from the seeded RNG (src/common/rng.hh) and may
   never read host time.

Two front ends, same findings format: libclang over
build/compile_commands.json when the python bindings are importable
(AST-accurate annotation discovery and call edges), else a regex fallback
that parses the macro tokens and resolves callees by simple name with
receiver-type hints (member/param/local declarations) plus an inheritance
map for virtual dispatch.  The finding set is a zero baseline — any new
finding fails.

Usage: tools/lint_hotpath.py [repo-root]    (exit 0 clean, 1 findings,
       tools/lint_hotpath.py --self-test     2 usage/internal error)
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from lint_common import (Function, build_model, build_model_libclang,
                         iter_sources, load_libclang, repo_root,
                         strip_comments, walk)

ANNOTATIONS = {
    "ASCOMA_HOT_PATH": "hot_path",
    "ASCOMA_SIGNAL_SAFE": "signal_safe",
    "ASCOMA_DETERMINISM_SENSITIVE": "determinism_sensitive",
}
CLANG_TAGS = {  # [[clang::annotate("...")]] spellings (libclang front end)
    "ascoma::hot_path": "hot_path",
    "ascoma::signal_safe": "signal_safe",
    "ascoma::determinism_sensitive": "determinism_sensitive",
}

# ---- reasoned exemptions ----------------------------------------------------
# Same contract as lint_types' CAST_BOUNDARY_FILES: every entry needs a
# justification of the same kind, and the traversal stops at the boundary
# (the function's body and callees are trusted, not scanned).

HOT_ALLOC_BOUNDARY = {
    # ring buffer reserve()d at construction; full buffer drops, never grows
    "EventSink::emit",
    # telemetry samples, rate-limited by the Sampler period; amortized vector
    "EventSink::add_sample",
    # activity bitmap pre-sized by reserve_pages() at machine setup
    "PageCache::add_active",
    # setup-time sizing; no-op on the fault path once pre-sized
    "PageCache::reserve_pages",
    # push_back bounded by capacity (double release is a checked failure)
    "PageCache::release",
    # clock-hand rotation: pop_front/push_back pair, no net deque growth
    "PageCache::rotate",
    # cold growth for direct-construction tests; pre-sized in simulator runs
    # (VcNumaPolicy::grow_for is only called from the un-fenced step loop)
    "AsComaPolicy::grow_for",
    # watchdog diagnostics: reached only after the expiry guard fired
    "CoherentMemory::check_watchdog",
}

SIGNAL_BOUNDARY = set()  # nothing exempted: the handler must stay primitive

DETERMINISM_BOUNDARY = {
    # collects the unordered map's lock ids and sorts before emitting
    "LockTable::encode",
}

# The only files allowed to touch host randomness/time: the seeded RNG and
# the host-side telemetry that never feeds simulated state.
RNG_BOUNDARY_FILES = {
    "src/common/rng.hh",      # the seeded RNG implementation itself
    "src/selfprof/clock.hh",  # self-profiler wall clock (host telemetry)
    "src/selfprof/clock.cc",  # TSC-tick -> nanosecond calibration
    "src/core/sweep.cc",      # wall-time ETA / sim-rate telemetry
}

# ---- forbidden-token tables -------------------------------------------------

ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"                      # new T / new T[] (not a macro arg)
    r"|\b(?:malloc|calloc|realloc|strdup)\s*\("
    r"|\bmake_(?:unique|shared)\b"
    r"|(?:\.|->)(?:push_back|push_front|emplace_back|emplace_front|emplace"
    r"|insert|resize|reserve|assign|append)\s*\("
    r"|\bstd::to_string\s*\("
    r"|\bstd::string\s*[({]"
    r"|\bstd::(?:vector|deque|map|set|unordered_map|unordered_set|list"
    r"|string)\s*<[^;=]*>\s+\w+\s*[;({=]"     # allocating-container local
)

SIGNAL_RE = re.compile(
    r"\b(?:std::)?(?:mutex|recursive_mutex|shared_mutex|lock_guard"
    r"|unique_lock|scoped_lock|condition_variable)\b"
    r"|\b(?:ascoma::)?(?:Mutex|LockGuard|CondVar)\b"  # annotated wrappers
    r"|\bthrow\b"
    r"|\b(?:printf|fprintf|puts|fputs|fwrite|fopen|snprintf)\s*\("
    r"|\bstd::c(?:out|err|log)\b"
)

RNG_RE = re.compile(
    r"\bstd::chrono\b|\brandom_device\b|\bmt19937\b|\bstd::rand\b"
    r"|\bsrand\s*\(|\brand\s*\(\s*\)"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
)

RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*(?:\*?)([a-z_]\w*)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b([a-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\(\)")


# ---- rule walks -------------------------------------------------------------


def finding_site(fn: Function, match: re.Match) -> str:
    line = fn.line + fn.body.count("\n", 0, match.start())
    return f"{fn.rel}:{line}"


def lint_hot_alloc(model):
    def scan(fn, path, findings):
        for m in ALLOC_RE.finditer(fn.body):
            findings.append(
                f"{finding_site(fn, m)}: [hot-path] allocation "
                f"'{m.group(0).strip().rstrip('(').lstrip('.->')}' reachable from "
                f"ASCOMA_HOT_PATH root '{path[0]}' via {' -> '.join(path)} — "
                f"hoist it off the hot path, mark the helper [[noreturn]] if "
                f"it is a cold failure, or add a HOT_ALLOC_BOUNDARY entry "
                f"with a reason")
    return walk(model, "hot_path", HOT_ALLOC_BOUNDARY, scan)


def lint_signal_safe(model):
    def scan(fn, path, findings):
        for m in SIGNAL_RE.finditer(fn.body):
            findings.append(
                f"{finding_site(fn, m)}: [signal-safe] "
                f"'{m.group(0).strip().rstrip('(').lstrip('.->')}' reachable from "
                f"ASCOMA_SIGNAL_SAFE root '{path[0]}' via "
                f"{' -> '.join(path)} — only lock-free atomics and "
                f"std::signal are async-signal-safe")
        for m in ALLOC_RE.finditer(fn.body):
            findings.append(
                f"{finding_site(fn, m)}: [signal-safe] allocation "
                f"'{m.group(0).strip().rstrip('(').lstrip('.->')}' reachable from "
                f"ASCOMA_SIGNAL_SAFE root '{path[0]}' via "
                f"{' -> '.join(path)} — the heap is not async-signal-safe")
    return walk(model, "signal_safe", SIGNAL_BOUNDARY, scan)


def lint_determinism(model):
    def scan(fn, path, findings):
        iterated = [m.group(1) for m in RANGE_FOR_RE.finditer(fn.body)]
        iterated += [m.group(1) for m in BEGIN_CALL_RE.finditer(fn.body)]
        for name in iterated:
            hint = model.member_types.get(name)
            if hint is None:
                continue
            _, full_type = hint
            if "unordered" in full_type:
                findings.append(
                    f"{fn.rel}:{fn.line}: [determinism] '{fn.qual}' iterates "
                    f"unordered container '{name}' "
                    f"({full_type.strip()}) and is reachable from "
                    f"ASCOMA_DETERMINISM_SENSITIVE root '{path[0]}' via "
                    f"{' -> '.join(path)} — sort before emitting, or add a "
                    f"DETERMINISM_BOUNDARY entry with a reason")
            if re.search(r"(?:map|set)\s*<[^,>]*\*", full_type):
                findings.append(
                    f"{fn.rel}:{fn.line}: [determinism] '{fn.qual}' iterates "
                    f"pointer-keyed container '{name}' — pointer order is "
                    f"not reproducible across runs")
    return walk(model, "determinism_sensitive", DETERMINISM_BOUNDARY, scan)


def lint_rng_boundary(root: Path):
    findings = []
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel in RNG_BOUNDARY_FILES:
            continue
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = RNG_RE.search(line)
            if m:
                findings.append(
                    f"{rel}:{lineno}: [rng-boundary] "
                    f"'{m.group(0).strip()}' outside the seeded-RNG/host-"
                    f"telemetry boundary — draw randomness from "
                    f"src/common/rng.hh, or add this file to "
                    f"RNG_BOUNDARY_FILES with a reason")
    return findings


# ---- driver -----------------------------------------------------------------


def run(root: Path):
    ast = load_libclang(root)
    if ast is not None:
        model = build_model_libclang(root, *ast, clang_tags=CLANG_TAGS)
        mode = "libclang"
    else:
        model = build_model(root, annotations=ANNOTATIONS)
        mode = "regex fallback"
    findings = (lint_hot_alloc(model) + lint_signal_safe(model)
                + lint_determinism(model) + lint_rng_boundary(root))
    return findings, mode, model


# ---- self-test --------------------------------------------------------------

FIXTURE_COMMON = {
    "src/common/annotate.hh": """
#define ASCOMA_HOT_PATH
#define ASCOMA_SIGNAL_SAFE
#define ASCOMA_DETERMINISM_SENSITIVE
""",
}

FIXTURE_PRISTINE = {
    **FIXTURE_COMMON,
    "src/sim/core.hh": """
class Engine {
 public:
  ASCOMA_HOT_PATH int step(int x);
  ASCOMA_DETERMINISM_SENSITIVE void save(Encoder& e) const;
  void decode(Decoder& d);
 private:
  int cheap_helper(int x);
  std::vector<int> table_;
};
ASCOMA_SIGNAL_SAFE void on_signal(int sig);
""",
    "src/sim/core.cc": """
int Engine::step(int x) { return cheap_helper(x) + 1; }
int Engine::cheap_helper(int x) { return table_[x]; }
void Engine::save(Encoder& e) const { e.u64(table_.size()); }
void on_signal(int sig) { g_flag.store(sig); }
[[noreturn]] void die(int code) {
  throw std::runtime_error(std::to_string(code));
}
""",
}

FIXTURE_BAD = {
    **FIXTURE_COMMON,
    "src/sim/bad.hh": """
class Engine {
 public:
  ASCOMA_HOT_PATH int step(int x);
  ASCOMA_HOT_PATH int step2(int x);
  ASCOMA_DETERMINISM_SENSITIVE void save(Encoder& e) const;
  void decode(Decoder& d);
  ASCOMA_DETERMINISM_SENSITIVE void save2(Encoder& e) const;
  void decode2(Decoder& d);
 private:
  int deep_helper(int x);
  void dump_members(Encoder& e) const;
  std::vector<int> log_;
  std::unordered_map<int, int> stats_;
};
ASCOMA_SIGNAL_SAFE void on_signal(int sig);
ASCOMA_SIGNAL_SAFE void on_signal2(int sig);
void log_line(const char* msg);
""",
    "src/sim/bad.cc": """
int Engine::step(int x) {
  log_.push_back(x);
  return x;
}
int Engine::step2(int x) { return deep_helper(x); }
int Engine::deep_helper(int x) {
  int* p = new int(x);
  return *p;
}
void Engine::save(Encoder& e) const {
  for (const auto& [k, v] : stats_) e.u64(v);
}
void Engine::save2(Encoder& e) const { dump_members(e); }
void Engine::dump_members(Encoder& e) const {
  for (auto it = stats_.begin(); it != stats_.end(); ++it) e.u64(it->first);
}
void on_signal(int sig) {
  std::mutex m;
  g_flag.store(sig);
}
void on_signal2(int sig) { log_line("caught"); }
void log_line(const char* msg) { fprintf(stderr, "%s", msg); }
""",
    "src/sim/seed.cc": """
unsigned host_entropy() {
  std::random_device rd;
  return rd();
}
""",
    "src/sim/stamp.cc": """
long stamp_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
}

SELF_TEST_EXPECT = [
    # R1 direct and transitive
    ("src/sim/bad.cc", "[hot-path] allocation 'push_back'", "Engine::step"),
    ("src/sim/bad.cc", "[hot-path] allocation 'new'",
     "Engine::step2 -> Engine::deep_helper"),
    # R2 direct and transitive
    ("src/sim/bad.cc", "[signal-safe] 'std::mutex'", "on_signal"),
    ("src/sim/bad.cc", "[signal-safe] 'fprintf'", "on_signal2 -> log_line"),
    # R3 direct (range-for) and transitive (.begin() walk)
    ("src/sim/bad.cc", "[determinism] 'Engine::save' iterates unordered",
     "Engine::save"),
    ("src/sim/bad.cc", "[determinism] 'Engine::dump_members' iterates "
     "unordered", "Engine::save2 -> Engine::dump_members"),
    # R4: host randomness and host time
    ("src/sim/seed.cc", "[rng-boundary] 'random_device'", ""),
    ("src/sim/stamp.cc", "[rng-boundary] 'std::chrono'", ""),
]


def self_test() -> int:
    import tempfile
    from lint_common import write_src_tree

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        good = Path(tmp) / "good"
        write_src_tree(good, FIXTURE_PRISTINE)
        findings, _, model = run(good)
        if findings:
            failures.append(f"pristine fixture not clean: {findings}")
        if len(model.roots.get("hot_path", ())) != 1 or \
                "die" not in model.cold:
            failures.append("pristine fixture parse drift "
                            f"(roots={model.roots}, cold={model.cold})")

        bad = Path(tmp) / "bad"
        write_src_tree(bad, FIXTURE_BAD)
        findings, _, _ = run(bad)
        for rel, token, via in SELF_TEST_EXPECT:
            hit = [f for f in findings
                   if f.startswith(rel) and token in f and via in f]
            if not hit:
                failures.append(f"did not flag: {rel} … {token} … {via}")
        if len(findings) < len(SELF_TEST_EXPECT):
            failures.append(
                f"only {len(findings)} findings on the bad fixture "
                f"(expected >= {len(SELF_TEST_EXPECT)})")

    if failures:
        print("lint_hotpath: SELF-TEST FAILED")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lint_hotpath: self-test OK (pristine fixture clean; all "
          f"{len(SELF_TEST_EXPECT)} seeded violations flagged)")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    if "--self-test" in argv:
        return self_test()
    if len(argv) > 1:
        print(__doc__)
        return 2
    root = repo_root(argv)
    findings, mode, model = run(root)
    for f in findings:
        print(f"lint_hotpath: {f}")
    if findings:
        print(f"lint_hotpath: {len(findings)} finding(s) [{mode}]")
        return 1
    n_roots = sum(len(v) for v in model.roots.values())
    print(f"lint_hotpath: OK [{mode}] ({n_roots} annotated roots; no "
          f"allocation on hot paths, signal handler primitive, determinism-"
          f"sensitive code ordered, host randomness/time fenced)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
