#!/usr/bin/env python3
"""Shared scaffolding for the repo's source linters (tools/lint_*.py).

Each linter stays a single self-contained checker; what they share lives
here so the bootstrap logic cannot drift between them:

* ``strip_comments`` / ``iter_sources``   — the textual front end
* ``load_libclang``                       — the AST front end bootstrap
  (clang python bindings + build/compile_commands.json, or None)
* ``repo_root``                           — the [repo-root] argv convention
* ``report``                              — the shared findings/OK epilogue
* ``run_text_fixtures``                   — the (name, text, expect) fixture
  suite used by --self-test modes
* ``write_src_tree``                      — materialize a fixture src/ tree
  for linters that walk a repo root rather than a text blob

Importable from the tools/ directory (the linters add it to sys.path when
run as scripts from elsewhere).
"""

import json
import re
import sys
from pathlib import Path


def strip_comments(text: str) -> str:
    """Drop // and /* */ comments (string literals are not parsed — the
    linters' token patterns are chosen so this never matters in practice)."""
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def iter_sources(root: Path, subdir: str = "src"):
    """All .hh/.cc files under ``root/subdir``, sorted for stable output."""
    for path in sorted((root / subdir).rglob("*")):
        if path.suffix in (".hh", ".cc"):
            yield path


def repo_root(argv: list) -> Path:
    """The [repo-root] positional argument, defaulting to the repo this
    file lives in (tools/..)."""
    return Path(argv[0]) if argv else Path(__file__).parent.parent


def load_libclang(root: Path):
    """(index, compdb) when the AST front end is usable, else None.

    Usable means: the clang python bindings import AND
    build/compile_commands.json exists with "arguments"-style entries.
    Callers fall back to their regex front end on None.
    """
    try:
        from clang import cindex
        index = cindex.Index.create()
    except Exception:
        return None
    compdb_path = root / "build" / "compile_commands.json"
    if not compdb_path.exists():
        return None
    with open(compdb_path) as fh:
        compdb = json.load(fh)
    if compdb and "arguments" not in compdb[0]:
        return None  # "command"-style entries: fall back
    return index, compdb


def report(tool: str, findings: list, ok_message: str, mode: str = None) -> int:
    """Print findings (or the OK line) in the shared format; return the
    process exit code (0 clean, 1 findings)."""
    tag = f" [{mode}]" if mode else ""
    for f in findings:
        print(f"{tool}: {f}")
    if findings:
        print(f"{tool}: {len(findings)} finding(s){tag}")
        return 1
    print(f"{tool}: OK{tag} ({ok_message})")
    return 0


def run_text_fixtures(tool: str, fixtures: list, lint) -> int:
    """Run a (name, text, expect_findings) fixture suite through ``lint``
    (text -> findings list).  Returns the self-test exit code."""
    failures = 0
    for name, text, expect_findings in fixtures:
        findings = lint(text)
        if bool(findings) != expect_findings:
            failures += 1
            verdict = "expected findings" if expect_findings else "clean"
            print(f"SELF-TEST FAIL [{name}]: wanted {verdict}, got:")
            for f in findings:
                print(f"  {f}")
    if failures:
        print(f"{tool} self-test: {failures} fixture(s) failed")
        return 1
    print(f"{tool} self-test: all {len(fixtures)} fixtures pass")
    return 0


def write_src_tree(root: Path, files: dict) -> None:
    """Materialize ``files`` ({"src/sim/a.hh": text, ...}) under ``root``
    for fixture-tree self-tests."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


if __name__ == "__main__":
    print(__doc__)
    sys.exit(2)
