#!/usr/bin/env python3
"""Shared scaffolding for the repo's source linters (tools/lint_*.py).

Each linter stays a single self-contained checker; what they share lives
here so the bootstrap logic cannot drift between them:

* ``strip_comments`` / ``iter_sources``   — the textual front end
* ``load_libclang``                       — the AST front end bootstrap
  (clang python bindings + build/compile_commands.json, or None)
* ``repo_root``                           — the [repo-root] argv convention
* ``report``                              — the shared findings/OK epilogue
* ``run_text_fixtures``                   — the (name, text, expect) fixture
  suite used by --self-test modes
* ``write_src_tree``                      — materialize a fixture src/ tree
  for linters that walk a repo root rather than a text blob
* the call-graph walker                   — ``Model``/``build_model``/
  ``build_model_libclang``/``resolve_calls``/``walk``: one traversal shared
  by the annotation-rooted linters (lint_hotpath's hot-path/signal/
  determinism rules, lint_concurrency's lock-discipline rules), so the two
  fences agree on what "reachable" means.

Importable from the tools/ directory (the linters add it to sys.path when
run as scripts from elsewhere).
"""

import json
import re
import sys
from pathlib import Path


def strip_comments(text: str) -> str:
    """Drop // and /* */ comments (string literals are not parsed — the
    linters' token patterns are chosen so this never matters in practice)."""
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def iter_sources(root: Path, subdir: str = "src"):
    """All .hh/.cc files under ``root/subdir``, sorted for stable output."""
    for path in sorted((root / subdir).rglob("*")):
        if path.suffix in (".hh", ".cc"):
            yield path


def repo_root(argv: list) -> Path:
    """The [repo-root] positional argument, defaulting to the repo this
    file lives in (tools/..)."""
    return Path(argv[0]) if argv else Path(__file__).parent.parent


def load_libclang(root: Path):
    """(index, compdb) when the AST front end is usable, else None.

    Usable means: the clang python bindings import AND
    build/compile_commands.json exists with "arguments"-style entries.
    Callers fall back to their regex front end on None.
    """
    try:
        from clang import cindex
        index = cindex.Index.create()
    except Exception:
        return None
    compdb_path = root / "build" / "compile_commands.json"
    if not compdb_path.exists():
        return None
    with open(compdb_path) as fh:
        compdb = json.load(fh)
    if compdb and "arguments" not in compdb[0]:
        return None  # "command"-style entries: fall back
    return index, compdb


def report(tool: str, findings: list, ok_message: str, mode: str = None) -> int:
    """Print findings (or the OK line) in the shared format; return the
    process exit code (0 clean, 1 findings)."""
    tag = f" [{mode}]" if mode else ""
    for f in findings:
        print(f"{tool}: {f}")
    if findings:
        print(f"{tool}: {len(findings)} finding(s){tag}")
        return 1
    print(f"{tool}: OK{tag} ({ok_message})")
    return 0


def run_text_fixtures(tool: str, fixtures: list, lint) -> int:
    """Run a (name, text, expect_findings) fixture suite through ``lint``
    (text -> findings list).  Returns the self-test exit code."""
    failures = 0
    for name, text, expect_findings in fixtures:
        findings = lint(text)
        if bool(findings) != expect_findings:
            failures += 1
            verdict = "expected findings" if expect_findings else "clean"
            print(f"SELF-TEST FAIL [{name}]: wanted {verdict}, got:")
            for f in findings:
                print(f"  {f}")
    if failures:
        print(f"{tool} self-test: {failures} fixture(s) failed")
        return 1
    print(f"{tool} self-test: all {len(fixtures)} fixtures pass")
    return 0


def write_src_tree(root: Path, files: dict) -> None:
    """Materialize ``files`` ({"src/sim/a.hh": text, ...}) under ``root``
    for fixture-tree self-tests."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


# ============================================================================
# The shared call-graph walker (formerly private to lint_hotpath.py).
#
# Two front ends build the same Model: ``build_model`` parses the tree
# textually (regex; works on a never-compiled checkout, the operative mode
# in CI where linting runs before configure), ``build_model_libclang``
# parses the compilation database for AST-accurate call edges.  Both slice
# function bodies out of the file text so every rule scan shares one
# surface regardless of front end.
# ============================================================================

CHECK_MACRO_RE = re.compile(r"\bASCOMA_CHECK(?:_MSG)?\s*\(")

NOT_FUNC_NAMES = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "else", "do", "new", "delete", "defined",
    "assert", "ASCOMA_CHECK", "ASCOMA_CHECK_MSG", "ASCOMA_ANNOTATE",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "noexcept", "alignas", "explicit", "operator",
}

UPPER_ID_RE = re.compile(r"\b([A-Z]\w*)\b")

# Method names shared with the standard library: a receiver call on one of
# these never resolves by simple name alone (ptr.reset() is not
# SweepStatusBoard::reset) — it needs a receiver-type hint.
GENERIC_METHODS = {
    "reset", "clear", "size", "empty", "load", "store", "insert", "erase",
    "find", "count", "at", "get", "release", "value", "str", "c_str",
    "begin", "end", "front", "back", "data", "swap", "first", "second",
    "push", "pop", "top", "test", "set", "fill", "min", "max", "exchange",
    "fetch_add", "fetch_sub", "lock", "unlock", "wait", "run", "apply",
    "emit", "add", "done", "tick", "next", "name", "id", "index",
}

CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:ASCOMA_\w+(?:\([^()]*\))?\s+)?"
                      r"([\w:]+)\s*(?:final\s*)?(?::\s*[^{;]+)?\{")
INHERIT_RE = re.compile(r"\b(?:class|struct)\s+([\w:]+)\s*(?:final\s*)?:\s*"
                        r"(?:public|protected|private)?\s*(?:virtual\s+)?"
                        r"([\w:]+)")
MEMBER_RE = re.compile(
    r"(?:^|[;{}])\s*(?:mutable\s+|static\s+|constexpr\s+)*"
    r"((?:const\s+)?[\w:]+(?:<[^;()]*?>)?\s*[&\*]?)\s+"
    r"([a-z_]\w*)\s*(?:ASCOMA_\w+\([^;()]*\)\s*)?"
    r"(?:=[^;]*|\{[^;{}]*\})?;", re.M)
FUNC_NAME_RE = re.compile(r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
LOCAL_RE = re.compile(
    r"\b((?:[\w]+::)*[A-Z]\w*)(?:<[^;=]*?>)?\s*[&\*]?\s+([a-z]\w*)\s*[=;(]")
RECEIVER_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
QUALIFIED_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)::([A-Za-z_]\w*)\s*\(")
BARE_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")


def strip_check_macros(text: str) -> str:
    """Remove ASCOMA_CHECK*(...) invocations (balanced parens) — their
    message building runs only on the failure branch."""
    out = []
    pos = 0
    while True:
        m = CHECK_MACRO_RE.search(text, pos)
        if m is None:
            out.append(text[pos:])
            return "".join(out)
        out.append(text[pos:m.start()])
        depth = 0
        i = m.end() - 1  # at the '('
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        out.append(";")
        pos = i + 1


def match_brace(text: str, open_idx: int) -> int:
    """Index of the '}' matching the '{' at open_idx (len(text) if
    unbalanced)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def last_class_hint(type_text: str):
    """The receiver-class heuristic: last uppercase identifier in a
    declared type (unique_ptr<vm::PageoutDaemon> -> PageoutDaemon)."""
    ids = UPPER_ID_RE.findall(type_text)
    return ids[-1] if ids else None


class Function:
    def __init__(self, qual, rel, line, body, prefix):
        self.qual = qual          # "Class::name" or "name"
        self.rel = rel            # repo-relative file
        self.line = line          # 1-based line of the definition
        self.body = body          # body text, checks stripped
        self.prefix = prefix      # declaration text before the name
        self.callees = []         # resolved qualified names
        self.param_hints = {}     # param name -> class hint


class Model:
    """Everything the rules need, built once per tree."""

    def __init__(self):
        self.defs = {}            # qual -> Function
        self.by_simple = {}       # simple name -> [qual]
        self.roots = {}           # kind -> set of qualified names
        self.cold = set()         # [[noreturn]] qualified names
        self.subclasses = {}      # base simple name -> set of derived
        self.member_types = {}    # member name -> (hint, full type text)


def class_spans(text):
    """[(open, close, simple_name)] for every class/struct body."""
    spans = []
    for m in CLASS_RE.finditer(text):
        open_idx = m.end() - 1
        spans.append((open_idx, match_brace(text, open_idx),
                      m.group(1).split("::")[-1]))
    return spans


def enclosing_class(spans, offset):
    best = None
    for open_idx, close_idx, name in spans:
        if open_idx < offset < close_idx:
            if best is None or open_idx > best[0]:
                best = (open_idx, name)
    return best[1] if best else None


def body_start(text, close_paren):
    """Offset of the definition body '{' after the parameter list's ')',
    skipping trailing qualifiers and a constructor init list; None when the
    match is a declaration or call."""
    i = close_paren + 1
    n = len(text)
    while i < n:
        rest = text[i:i + 64]
        m = re.match(r"\s*(const|noexcept|override|final|mutable)\b", rest)
        if m:
            i += m.end()
            continue
        m = re.match(r"\s*ASCOMA_\w+\s*(\([^()]*\))?", rest)
        if m and m.group(0).strip():
            i += m.end()
            continue
        m = re.match(r"\s*->\s*[\w:<>,\s&\*]+", rest)
        if m and "{" not in m.group(0):
            i += m.end()
            continue
        break
    while i < n and text[i].isspace():
        i += 1
    if i >= n:
        return None
    if text[i] == "{":
        return i
    if text[i] != ":":
        return None
    # Constructor init list: the body '{' is the first brace at paren depth
    # 0 whose previous non-space char is not part of a brace-initializer
    # head (identifier or '>').
    depth = 0
    j = i + 1
    while j < n:
        c = text[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ";":
            return None
        elif c == "{" and depth == 0:
            k = j - 1
            while k >= 0 and text[k].isspace():
                k -= 1
            if k >= 0 and (text[k].isalnum() or text[k] in "_>"):
                j = match_brace(text, j)  # skip the brace initializer
            else:
                return j
        j += 1
    return None


def parse_params(text, open_paren):
    """{param name: class hint} for the parameter list at open_paren;
    returns (hints, close_paren index)."""
    depth = 0
    i = open_paren
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    inner = text[open_paren + 1:i]
    hints = {}
    part, angle, paren = [], 0, 0
    parts = []
    for c in inner:
        if c == "<":
            angle += 1
        elif c == ">":
            angle -= 1
        elif c == "(":
            paren += 1
        elif c == ")":
            paren -= 1
        if c == "," and angle == 0 and paren == 0:
            parts.append("".join(part))
            part = []
        else:
            part.append(c)
    parts.append("".join(part))
    for p in parts:
        m = re.search(r"([A-Za-z_]\w*)\s*(?:=[^,]*)?$", p.strip())
        if m is None:
            continue
        hint = last_class_hint(p[:m.start()])
        if hint:
            hints[m.group(1)] = hint
    return hints, i


def build_model(root: Path, annotations: dict = None,
                skip_files=("src/common/annotate.hh",
                            "src/common/sync.hh")) -> Model:
    """Textual front end.  ``annotations`` maps macro token -> root kind
    (e.g. {"ASCOMA_HOT_PATH": "hot_path"}); pass {} for a linter that only
    needs call edges.  ``skip_files`` are macro-definition files that are
    never roots or findings."""
    if annotations is None:
        annotations = {}
    model = Model()
    per_file = []  # (rel, text, spans)
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel in skip_files:
            continue  # defines the macros; never a root or a finding
        text = strip_comments(path.read_text())
        spans = class_spans(text)
        per_file.append((rel, text, spans))
        for m in INHERIT_RE.finditer(text):
            base = m.group(2).split("::")[-1]
            model.subclasses.setdefault(base, set()).add(
                m.group(1).split("::")[-1])
        for open_idx, close_idx, cls in spans:
            body = text[open_idx + 1:close_idx]
            for mm in MEMBER_RE.finditer(body):
                if "(" in mm.group(1):
                    continue
                # hint may be None (std:: container of builtins); the
                # determinism rule still needs the declared type text.
                model.member_types.setdefault(
                    mm.group(2), (last_class_hint(mm.group(1)), mm.group(1)))

    for rel, text, spans in per_file:
        # Annotation roots and [[noreturn]] cold marks: resolve the macro /
        # attribute token forward to the function name it precedes.
        for token, kind in list(annotations.items()) + [("[[noreturn]]", None)]:
            start = 0
            while True:
                idx = text.find(token, start)
                if idx < 0:
                    break
                start = idx + len(token)
                seg_end = text.find("(", start)
                if seg_end < 0:
                    break
                m = re.search(r"(~?[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*$",
                              text[start:seg_end])
                if m is None:
                    continue
                name = m.group(1)
                if "::" not in name:
                    cls = enclosing_class(spans, idx)
                    if cls:
                        name = f"{cls}::{name}"
                if kind is None:
                    model.cold.add(name)
                else:
                    model.roots.setdefault(kind, set()).add(name)

        # Function definitions (top-level only: matches inside a found body
        # are calls/lambdas and belong to the enclosing definition).
        pos = 0
        while True:
            m = FUNC_NAME_RE.search(text, pos)
            if m is None:
                break
            name = re.sub(r"\s+", "", m.group(1))
            simple = name.split("::")[-1]
            if simple in NOT_FUNC_NAMES or name.split("::")[0] in ("std",):
                pos = m.end()
                continue
            prev = text[:m.start()].rstrip()
            if prev.endswith(".") or prev.endswith("->"):
                pos = m.end()  # member access, not a definition
                continue
            hints, close_paren = parse_params(text, m.end() - 1)
            bstart = body_start(text, close_paren)
            if bstart is None:
                pos = m.end()
                continue
            bend = match_brace(text, bstart)
            qual = name
            if "::" not in qual:
                cls = enclosing_class(spans, m.start())
                if cls:
                    qual = f"{cls}::{qual}"
            else:
                qual = "::".join(qual.split("::")[-2:])
            line = text.count("\n", 0, m.start()) + 1
            prefix_start = max(text.rfind(";", 0, m.start()),
                               text.rfind("}", 0, m.start()),
                               text.rfind("{", 0, m.start()))
            fn = Function(qual, rel, line,
                          strip_check_macros(text[bstart + 1:bend]),
                          text[prefix_start + 1:m.start()])
            fn.param_hints = hints
            if qual not in model.defs:  # first definition wins (overloads
                model.defs[qual] = fn   # share one rule surface)
            else:
                model.defs[qual].body += "\n" + fn.body
            model.by_simple.setdefault(qual.split("::")[-1], [])
            if qual not in model.by_simple[qual.split("::")[-1]]:
                model.by_simple[qual.split("::")[-1]].append(qual)
            pos = bend + 1

    resolve_calls(model)
    return model


def all_subclasses(model: Model, cls: str):
    out, work = set(), [cls]
    while work:
        c = work.pop()
        for d in model.subclasses.get(c, ()):
            if d not in out:
                out.add(d)
                work.append(d)
    return out


def resolve_calls(model: Model):
    for fn in model.defs.values():
        callees = set()
        local_hints = dict(fn.param_hints)
        for m in LOCAL_RE.finditer(fn.body):
            local_hints.setdefault(m.group(2), m.group(1).split("::")[-1])
        own_class = fn.qual.split("::")[0] if "::" in fn.qual else None

        def by_class_hint(cls, method):
            cands = []
            for c in [cls] + sorted(all_subclasses(model, cls)):
                q = f"{c}::{method}"
                if q in model.defs:
                    cands.append(q)
            return cands

        # Precision over recall: an ambiguous call with no usable type hint
        # is dropped rather than fanned out to every same-named method —
        # the libclang front end resolves those exactly.
        for m in RECEIVER_CALL_RE.finditer(fn.body):
            recv, method = m.group(1), m.group(2)
            matches = model.by_simple.get(method, [])
            if not matches:
                continue
            if recv == "this":
                hint = own_class
            else:
                hint = local_hints.get(recv) or \
                    (model.member_types.get(recv) or (None,))[0]
            if hint:
                callees.update(by_class_hint(hint, method))
            elif len(matches) == 1 and method not in GENERIC_METHODS:
                callees.add(matches[0])
        for m in QUALIFIED_CALL_RE.finditer(fn.body):
            q = f"{m.group(1)}::{m.group(2)}"
            if q in model.defs:
                callees.add(q)
        for m in BARE_CALL_RE.finditer(fn.body):
            name = m.group(1)
            if name in NOT_FUNC_NAMES:
                continue
            matches = model.by_simple.get(name, [])
            if len(matches) == 1:
                callees.add(matches[0])
            elif matches and own_class:
                callees.update(by_class_hint(own_class, name))
        fn.callees = sorted(callees - {fn.qual})


def build_model_libclang(root: Path, index, compdb,
                         clang_tags: dict = None) -> Model:
    """AST-accurate roots and call edges; bodies for rule scanning are
    sliced from the file text so both front ends share one rule surface.
    ``clang_tags`` maps [[clang::annotate]] spellings -> root kind."""
    from clang import cindex

    if clang_tags is None:
        clang_tags = {}
    model = Model()
    texts = {}
    for entry in compdb:
        src = Path(entry["file"])
        try:
            src.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        args = [a for a in entry["arguments"][1:] if a not in ("-c", "-o")]
        tu = index.parse(str(src), args=args[:-1])
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (cindex.CursorKind.FUNCTION_DECL,
                                cindex.CursorKind.CXX_METHOD,
                                cindex.CursorKind.CONSTRUCTOR,
                                cindex.CursorKind.DESTRUCTOR):
                continue
            loc = cur.location
            if loc.file is None:
                continue
            try:
                rel = Path(loc.file.name).resolve().relative_to(
                    root.resolve()).as_posix()
            except ValueError:
                continue
            if not rel.startswith("src/"):
                continue
            parent = cur.semantic_parent
            qual = cur.spelling
            if parent is not None and parent.kind in (
                    cindex.CursorKind.CLASS_DECL,
                    cindex.CursorKind.STRUCT_DECL):
                qual = f"{parent.spelling}::{cur.spelling}"
            for child in cur.get_children():
                if child.kind == cindex.CursorKind.ANNOTATE_ATTR and \
                        child.spelling in clang_tags:
                    model.roots.setdefault(
                        clang_tags[child.spelling], set()).add(qual)
            if "noreturn" in [c.spelling or "" for c in cur.get_children()] \
                    or cur.is_definition() and "[[noreturn]]" in (
                        cur.result_type.spelling or ""):
                model.cold.add(qual)
            if not cur.is_definition() or qual in model.defs:
                continue
            if loc.file.name not in texts:
                texts[loc.file.name] = Path(loc.file.name).read_text()
            text = texts[loc.file.name]
            ext = cur.extent
            body = text[ext.start.offset:ext.end.offset]
            brace = body.find("{")
            fn = Function(qual, rel, loc.line,
                          strip_check_macros(body[brace + 1:-1])
                          if brace >= 0 else "", body[:max(brace, 0)])
            callees = set()
            for sub in cur.walk_preorder():
                if sub.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                ref = sub.referenced
                if ref is None:
                    continue
                cq = ref.spelling
                rp = ref.semantic_parent
                if rp is not None and rp.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    cq = f"{rp.spelling}::{ref.spelling}"
                callees.add(cq)
            fn.callees = sorted(callees - {qual})
            model.defs[qual] = fn
            model.by_simple.setdefault(qual.split("::")[-1], []).append(qual)
    # Member declarations for rules that need declared types (textual, same
    # as the regex front end).
    for path in iter_sources(root):
        text = strip_comments(path.read_text())
        for open_idx, close_idx, _ in class_spans(text):
            for mm in MEMBER_RE.finditer(text[open_idx + 1:close_idx]):
                if "(" in mm.group(1):
                    continue
                model.member_types.setdefault(
                    mm.group(2), (last_class_hint(mm.group(1)), mm.group(1)))
    return model


def walk(model: Model, kind: str, boundary, scan):
    """BFS from the `kind` roots; `scan(fn, path)` appends findings for one
    visited function."""
    findings = []
    for root in sorted(model.roots.get(kind, ())):
        seen = set()
        work = [(root, [root])]
        while work:
            qual, path = work.pop()
            if qual in seen or qual in boundary or qual in model.cold:
                continue
            seen.add(qual)
            fn = model.defs.get(qual)
            if fn is None:
                continue  # annotated declaration without a parsed body
            scan(fn, path, findings)
            for callee in fn.callees:
                if callee not in seen:
                    work.append((callee, path + [callee]))
    # One finding per (site, rule), even when reachable from several roots.
    uniq, out = set(), []
    for f in findings:
        key = f.split(" via ")[0]
        if key not in uniq:
            uniq.add(key)
            out.append(f)
    return out


if __name__ == "__main__":
    print(__doc__)
    sys.exit(2)
