// ascoma_sim — command-line front end to the AS-COMA machine simulator.
//
//   ascoma_sim --workload em3d --arch ascoma --pressure 90
//   ascoma_sim --workload radix --arch all --pressure 10,50,90 --csv out.csv
//   ascoma_sim --trace /tmp/app.trace --arch ccnuma --pressure 50
//
// Options:
//   --workload NAME     barnes|em3d|fft|lu|ocean|radix (default em3d)
//   --trace PATH        drive the machine from a recorded trace instead
//   --arch A[,B...]     ccnuma|scoma|rnuma|vcnuma|ascoma|all (default ascoma)
//   --pressure P[,Q..]  memory pressures in percent (default 50)
//   --scale S           workload iteration scale (default 1.0)
//   --threshold N       initial relocation threshold (default 64)
//   --seed N            workload RNG seed
//   --no-backoff        disable AS-COMA's adaptive back-off
//   --no-scoma-first    disable AS-COMA's S-COMA-preferred allocation
//   --store-buffer N    non-blocking stores with an N-entry buffer
//   --threads N         sweep parallelism (default: hardware)
//   --csv PATH          also append results as CSV rows
//   --verbose           per-node/kernel detail

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/sweep.hh"
#include "report/report.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

using namespace ascoma;

namespace {

struct Options {
  std::string workload = "em3d";
  std::string trace_path;
  std::vector<ArchModel> archs = {ArchModel::kAsComa};
  std::vector<double> pressures = {0.5};
  double scale = 1.0;
  std::optional<std::uint32_t> threshold;
  std::optional<std::uint64_t> seed;
  bool backoff = true;
  bool scoma_first = true;
  std::optional<std::uint32_t> store_buffer;
  unsigned threads = 0;
  std::string csv_path;
  bool verbose = false;
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: ascoma_sim [--workload NAME | --trace PATH] [--arch LIST]\n"
      "                  [--pressure LIST] [--scale S] [--threshold N]\n"
      "                  [--seed N] [--no-backoff] [--no-scoma-first]\n"
      "                  [--store-buffer N] [--threads N] [--csv PATH]\n"
      "                  [--verbose]\n"
      "workloads:";
  for (const auto& n : workload::workload_names()) std::cerr << ' ' << n;
  std::cerr << "\narchitectures: ccnuma scoma rnuma vcnuma ascoma all\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--workload") {
      o.workload = need_value(i);
    } else if (a == "--trace") {
      o.trace_path = need_value(i);
    } else if (a == "--arch") {
      o.archs.clear();
      for (const auto& name : split(need_value(i), ',')) {
        if (name == "all") {
          o.archs = {ArchModel::kCcNuma, ArchModel::kScoma, ArchModel::kRNuma,
                     ArchModel::kVcNuma, ArchModel::kAsComa};
          break;
        }
        ArchModel m;
        if (!parse_arch_model(name, &m)) usage("unknown arch: " + name);
        o.archs.push_back(m);
      }
    } else if (a == "--pressure") {
      o.pressures.clear();
      for (const auto& p : split(need_value(i), ',')) {
        const double v = std::atof(p.c_str()) / 100.0;
        if (v <= 0.0 || v > 1.0) usage("bad pressure: " + p);
        o.pressures.push_back(v);
      }
      if (o.pressures.empty()) usage("empty pressure list");
    } else if (a == "--scale") {
      o.scale = std::atof(need_value(i).c_str());
      if (o.scale <= 0.0) usage("bad scale");
    } else if (a == "--threshold") {
      o.threshold = static_cast<std::uint32_t>(
          std::atol(need_value(i).c_str()));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(
          std::atoll(need_value(i).c_str()));
    } else if (a == "--no-backoff") {
      o.backoff = false;
    } else if (a == "--no-scoma-first") {
      o.scoma_first = false;
    } else if (a == "--store-buffer") {
      o.store_buffer = static_cast<std::uint32_t>(
          std::atol(need_value(i).c_str()));
    } else if (a == "--threads") {
      o.threads = static_cast<unsigned>(std::atol(need_value(i).c_str()));
    } else if (a == "--csv") {
      o.csv_path = need_value(i);
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--help" || a == "-h") {
      usage();
    } else {
      usage("unknown option: " + a);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // Resolve the workload (generator or trace).
  std::unique_ptr<workload::Workload> wl;
  if (!opt.trace_path.empty()) {
    try {
      wl = std::make_unique<trace::TraceWorkload>(opt.trace_path);
    } catch (const std::exception& e) {
      std::cerr << "cannot load trace: " << e.what() << '\n';
      return 1;
    }
  } else {
    wl = workload::make_workload(opt.workload, opt.scale);
    if (!wl) usage("unknown workload: " + opt.workload);
  }

  MachineConfig base;
  if (opt.threshold) base.refetch_threshold = *opt.threshold;
  if (opt.seed) base.seed = *opt.seed;
  base.ascoma_backoff = opt.backoff;
  base.ascoma_scoma_first = opt.scoma_first;
  if (opt.store_buffer) {
    base.blocking_stores = false;
    base.store_buffer_entries = *opt.store_buffer;
  }

  struct Row {
    ArchModel arch;
    double pressure;
    core::RunResult result;
  };
  std::vector<Row> rows;
  for (ArchModel arch : opt.archs) {
    for (double pressure : opt.pressures) {
      MachineConfig cfg = base;
      cfg.arch = arch;
      cfg.memory_pressure = pressure;
      try {
        rows.push_back({arch, pressure, core::simulate(cfg, *wl)});
      } catch (const std::exception& e) {
        std::cerr << "run failed (" << to_string(arch) << ", "
                  << pressure * 100 << "%): " << e.what() << '\n';
        return 1;
      }
      if (arch == ArchModel::kCcNuma) break;  // pressure-independent
    }
  }

  Table t({"arch", "pressure", "cycles", "U-SH-MEM%", "K-OVERHD%", "SYNC%",
           "local miss%", "remote fetches", "upgrades", "suppressed"});
  for (const auto& r : rows) {
    const auto& time = r.result.stats.totals.time;
    const auto& m = r.result.stats.totals.misses;
    const auto& k = r.result.stats.totals.kernel;
    t.add_row({to_string(r.arch), Table::pct(r.pressure, 0),
               std::to_string(r.result.cycles()),
               Table::pct(time.frac(TimeBucket::kUserShared)),
               Table::pct(time.frac(TimeBucket::kKernelOvhd)),
               Table::pct(time.frac(TimeBucket::kSync)),
               Table::pct(m.total() ? static_cast<double>(m.local()) /
                                          static_cast<double>(m.total())
                                    : 0.0),
               std::to_string(m.remote()), std::to_string(k.upgrades),
               std::to_string(k.remap_suppressed)});
  }
  std::cout << "workload: " << wl->name() << "  (nodes: " << wl->nodes()
            << ", pages/node: " << wl->pages_per_node() << ")\n\n";
  t.print(std::cout);

  if (opt.verbose) {
    for (const auto& r : rows) {
      const auto& k = r.result.stats.totals.kernel;
      std::cout << "\n" << to_string(r.arch) << "(" << r.pressure * 100
                << "%): faults=" << k.page_faults
                << " scoma_allocs=" << k.scoma_allocs
                << " numa_allocs=" << k.numa_allocs
                << " upgrades=" << k.upgrades
                << " downgrades=" << k.downgrades
                << " daemon_runs=" << k.daemon_runs
                << " reclaim_failures=" << k.daemon_reclaim_failures
                << " threshold_raises=" << k.threshold_raises
                << " induced_cold=" << r.result.stats.totals.induced_cold_misses
                << " net_msgs=" << r.result.net_messages
                << " invals=" << r.result.directory_invalidations << '\n';
      std::cout << "  final thresholds:";
      for (auto th : r.result.final_threshold) std::cout << ' ' << th;
      std::cout << '\n';
    }
  }

  if (!opt.csv_path.empty()) {
    const bool fresh = !std::ifstream(opt.csv_path).good();
    std::ofstream csv(opt.csv_path, std::ios::app);
    if (!csv) {
      std::cerr << "cannot open csv file\n";
      return 1;
    }
    if (fresh) csv << report::csv_header() << '\n';
    for (const auto& r : rows)
      csv << report::csv_row(wl->name(), to_string(r.arch), r.result) << '\n';
    std::cout << "\nCSV appended to " << opt.csv_path << '\n';
  }
  return 0;
}
