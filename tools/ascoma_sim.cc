// ascoma_sim — command-line front end to the AS-COMA machine simulator.
//
//   ascoma_sim --workload em3d --arch ascoma --pressure 90
//   ascoma_sim --workload radix --arch all --pressure 10,50,90 --csv out.csv
//   ascoma_sim --trace /tmp/app.trace --arch ccnuma --pressure 50
//
// Options:
//   --workload NAME     barnes|em3d|fft|lu|ocean|radix (default em3d)
//   --trace PATH        drive the machine from a recorded trace instead
//   --arch A[,B...]     ccnuma|scoma|rnuma|vcnuma|ascoma|all (default ascoma)
//   --pressure P[,Q..]  memory pressures in percent (default 50)
//   --scale S           workload iteration scale (default 1.0)
//   --threshold N       initial relocation threshold (default 64)
//   --seed N            workload RNG seed
//   --no-backoff        disable AS-COMA's adaptive back-off
//   --no-scoma-first    disable AS-COMA's S-COMA-preferred allocation
//   --store-buffer N    non-blocking stores with an N-entry buffer
//   --threads N         sweep parallelism (default: hardware)
//   --csv PATH          also append results as CSV rows
//   --verbose           per-node/kernel detail
//
// Observability (single arch/pressure runs only):
//   --events PATH       dump the cycle-stamped event stream as JSONL
//   --perfetto PATH     dump a Chrome trace-event JSON (ui.perfetto.dev)
//   --metrics PATH      dump the gauge time series as CSV
//   --sample-every N    gauge sampling period in cycles (default 100000)
//   --profile DIR       attribute every demand access's latency to hardware
//                       components and dump histograms + per-page heat map
//                       into DIR (latency.csv/json, heat.csv/json,
//                       summary.json); compare dumps with ascoma_prof_diff
//
// Self-profiling & sweep telemetry (ARCHITECTURE.md §14):
//   --selfprof DIR      attribute the *host's* wall time to the simulator's
//                       own hot paths and dump the timer tree into DIR
//                       (selfprof.json, selfprof.csv); single arch/pressure,
//                       generated workloads only
//   --progress          single-line JSON heartbeat on stderr while the
//                       sweep runs (jobs done/total, sim-rate, ETA)
//   --progress-interval-ms N   heartbeat period (default 1000)
//   --serve PORT        live observability endpoint on 127.0.0.1:PORT while
//                       the sweep runs (ARCHITECTURE.md §16): GET /metrics
//                       (Prometheus), /progress, /jobs, /jobs/<fingerprint>,
//                       /events?last=N; PORT 0 picks an ephemeral port,
//                       printed on stderr
//
// Durability (ARCHITECTURE.md §15):
//   --store DIR         content-addressed result store: completed sweep jobs
//                       are persisted into DIR and identical jobs are served
//                       from it instead of re-simulating; a manifest journal
//                       records the campaign so it can be resumed
//   --resume DIR        re-run the campaign recorded in DIR's manifest:
//                       finished jobs are cache hits, the result vector (and
//                       CSV) is byte-identical to an uninterrupted run
//   --store-verify DIR  checksum every record in DIR and exit 0 (all clean)
//                       or 1 (corruption found); mutates nothing
//   --checkpoint-every N   snapshot the machine every N simulated cycles
//                       (single arch/pressure; atomic write + self-check)
//   --checkpoint-file PATH where to write the snapshot (default ascoma.ckpt)
//   --restore FILE      restore a snapshot and continue the interrupted run
//                       (same config/workload enforced by fingerprint)
//   SIGINT/SIGTERM drain in-flight jobs, flush the manifest and any crash
//   exporters, and print the resume command before exiting 128+signal.
//
// Fault injection & robustness (defaults leave results bit-identical):
//   --fault-drop P        per-message drop probability (0..1)
//   --fault-dup P         per-message duplication probability (0..1)
//   --fault-jitter P      per-message jitter probability (0..1)
//   --fault-jitter-cycles N   max injected jitter per message (default 64)
//   --fault-seed N        fault RNG seed (default: derived from --seed)
//   --watchdog-cycles N   fail any transaction outstanding > N cycles
//   --nack-busy N         homes NACK requests when backlogged > N cycles
//   --check-invariants / --no-check-invariants
//                         post-run coherence sweep (default on)

#include <charconv>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/machine.hh"
#include "core/sweep.hh"
#include "obs/export.hh"
#include "obs/sink.hh"
#include "prof/profiler.hh"
#include "report/report.hh"
#include "store/shutdown.hh"
#include "store/snapshot.hh"
#include "store/store.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

using namespace ascoma;

namespace {

struct Options {
  std::string workload = "em3d";
  std::string trace_path;
  std::vector<ArchModel> archs = {ArchModel::kAsComa};
  std::vector<double> pressures = {0.5};
  double scale = 1.0;
  std::optional<std::uint32_t> threshold;
  std::optional<std::uint64_t> seed;
  bool backoff = true;
  bool scoma_first = true;
  std::optional<std::uint32_t> store_buffer;
  unsigned threads = 0;
  std::string csv_path;
  bool verbose = false;
  std::string events_path;
  std::string perfetto_path;
  std::string metrics_path;
  std::string profile_dir;
  std::string selfprof_dir;
  bool progress = false;
  std::uint32_t progress_interval_ms = 1000;
  std::optional<std::uint16_t> serve_port;
  Cycle sample_every{100'000};
  double fault_drop = 0.0;
  double fault_dup = 0.0;
  double fault_jitter = 0.0;
  std::optional<Cycle> fault_jitter_cycles;
  std::optional<std::uint64_t> fault_seed;
  Cycle watchdog_cycles{0};
  Cycle nack_busy{0};
  std::optional<bool> check_invariants;
  std::string store_dir;
  std::string resume_dir;
  std::string store_verify_dir;
  Cycle checkpoint_every{0};
  std::string checkpoint_file = "ascoma.ckpt";
  std::string restore_path;

  bool observing() const {
    return !events_path.empty() || !perfetto_path.empty() ||
           !metrics_path.empty();
  }
  bool profiling() const { return !profile_dir.empty(); }
  bool selfprofiling() const { return !selfprof_dir.empty(); }
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: ascoma_sim [--workload NAME | --trace PATH] [--arch LIST]\n"
      "                  [--pressure LIST] [--scale S] [--threshold N]\n"
      "                  [--seed N] [--no-backoff] [--no-scoma-first]\n"
      "                  [--store-buffer N] [--threads N] [--csv PATH]\n"
      "                  [--events PATH] [--perfetto PATH] [--metrics PATH]\n"
      "                  [--profile DIR] [--sample-every N] [--verbose]\n"
      "                  [--selfprof DIR] [--progress]\n"
      "                  [--progress-interval-ms N] [--serve PORT]\n"
      "                  [--fault-drop P] [--fault-dup P] [--fault-jitter P]\n"
      "                  [--fault-jitter-cycles N] [--fault-seed N]\n"
      "                  [--watchdog-cycles N] [--nack-busy N]\n"
      "                  [--check-invariants | --no-check-invariants]\n"
      "                  [--store DIR | --resume DIR | --store-verify DIR]\n"
      "                  [--checkpoint-every N] [--checkpoint-file PATH]\n"
      "                  [--restore FILE]\n"
      "workloads:";
  for (const auto& n : workload::workload_names()) std::cerr << ' ' << n;
  std::cerr << "\narchitectures: ccnuma scoma rnuma vcnuma ascoma all\n";
  std::exit(2);
}

// ---- strict numeric parsing (reject garbage instead of reading it as 0) ----

template <typename T>
T parse_number(const std::string& s, const char* what) {
  T value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto r = std::from_chars(first, last, value);
  if (r.ec != std::errc{} || r.ptr != last)
    usage(std::string("bad value for ") + what + ": '" + s + "'");
  return value;
}

double parse_double(const std::string& s, const char* what) {
  return parse_number<double>(s, what);
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  return parse_number<std::uint64_t>(s, what);
}

std::uint32_t parse_u32(const std::string& s, const char* what) {
  const std::uint64_t v = parse_u64(s, what);
  if (v > std::numeric_limits<std::uint32_t>::max())
    usage(std::string("value out of range for ") + what + ": '" + s + "'");
  return static_cast<std::uint32_t>(v);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--workload") {
      o.workload = need_value(i);
    } else if (a == "--trace") {
      o.trace_path = need_value(i);
    } else if (a == "--arch") {
      o.archs.clear();
      for (const auto& name : split(need_value(i), ',')) {
        if (name == "all") {
          o.archs = {ArchModel::kCcNuma, ArchModel::kScoma, ArchModel::kRNuma,
                     ArchModel::kVcNuma, ArchModel::kAsComa};
          break;
        }
        ArchModel m;
        if (!parse_arch_model(name, &m)) usage("unknown arch: " + name);
        o.archs.push_back(m);
      }
    } else if (a == "--pressure") {
      o.pressures.clear();
      for (const auto& p : split(need_value(i), ',')) {
        const double v = parse_double(p, "--pressure") / 100.0;
        if (v <= 0.0 || v > 1.0) usage("bad pressure: " + p);
        o.pressures.push_back(v);
      }
      if (o.pressures.empty()) usage("empty pressure list");
    } else if (a == "--scale") {
      o.scale = parse_double(need_value(i), "--scale");
      if (o.scale <= 0.0) usage("bad scale");
    } else if (a == "--threshold") {
      o.threshold = parse_u32(need_value(i), "--threshold");
    } else if (a == "--seed") {
      o.seed = parse_u64(need_value(i), "--seed");
    } else if (a == "--no-backoff") {
      o.backoff = false;
    } else if (a == "--no-scoma-first") {
      o.scoma_first = false;
    } else if (a == "--store-buffer") {
      o.store_buffer = parse_u32(need_value(i), "--store-buffer");
    } else if (a == "--threads") {
      o.threads = parse_u32(need_value(i), "--threads");
    } else if (a == "--csv") {
      o.csv_path = need_value(i);
    } else if (a == "--events") {
      o.events_path = need_value(i);
    } else if (a == "--perfetto") {
      o.perfetto_path = need_value(i);
    } else if (a == "--metrics") {
      o.metrics_path = need_value(i);
    } else if (a == "--profile") {
      o.profile_dir = need_value(i);
    } else if (a == "--selfprof") {
      o.selfprof_dir = need_value(i);
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--serve") {
      const std::uint32_t p = parse_u32(need_value(i), "--serve");
      if (p > 65535) usage("--serve PORT must be in [0,65535]");
      o.serve_port = static_cast<std::uint16_t>(p);
    } else if (a == "--progress-interval-ms") {
      o.progress_interval_ms =
          parse_u32(need_value(i), "--progress-interval-ms");
      if (o.progress_interval_ms == 0)
        usage("--progress-interval-ms must be > 0");
    } else if (a == "--sample-every") {
      o.sample_every = Cycle{parse_u64(need_value(i), "--sample-every")};
      if (o.sample_every == Cycle{0}) usage("--sample-every must be > 0");
    } else if (a == "--fault-drop") {
      o.fault_drop = parse_double(need_value(i), "--fault-drop");
      if (o.fault_drop < 0.0 || o.fault_drop > 1.0)
        usage("--fault-drop must be in [0,1]");
    } else if (a == "--fault-dup") {
      o.fault_dup = parse_double(need_value(i), "--fault-dup");
      if (o.fault_dup < 0.0 || o.fault_dup > 1.0)
        usage("--fault-dup must be in [0,1]");
    } else if (a == "--fault-jitter") {
      o.fault_jitter = parse_double(need_value(i), "--fault-jitter");
      if (o.fault_jitter < 0.0 || o.fault_jitter > 1.0)
        usage("--fault-jitter must be in [0,1]");
    } else if (a == "--fault-jitter-cycles") {
      o.fault_jitter_cycles = Cycle{parse_u64(need_value(i), "--fault-jitter-cycles")};
      if (*o.fault_jitter_cycles == Cycle{0})
        usage("--fault-jitter-cycles must be > 0");
    } else if (a == "--fault-seed") {
      o.fault_seed = parse_u64(need_value(i), "--fault-seed");
    } else if (a == "--watchdog-cycles") {
      o.watchdog_cycles = Cycle{parse_u64(need_value(i), "--watchdog-cycles")};
    } else if (a == "--nack-busy") {
      o.nack_busy = Cycle{parse_u64(need_value(i), "--nack-busy")};
    } else if (a == "--check-invariants") {
      o.check_invariants = true;
    } else if (a == "--no-check-invariants") {
      o.check_invariants = false;
    } else if (a == "--store") {
      o.store_dir = need_value(i);
    } else if (a == "--resume") {
      o.resume_dir = need_value(i);
    } else if (a == "--store-verify") {
      o.store_verify_dir = need_value(i);
    } else if (a == "--checkpoint-every") {
      o.checkpoint_every = Cycle{parse_u64(need_value(i), "--checkpoint-every")};
      if (o.checkpoint_every == Cycle{0})
        usage("--checkpoint-every must be > 0");
    } else if (a == "--checkpoint-file") {
      o.checkpoint_file = need_value(i);
    } else if (a == "--restore") {
      o.restore_path = need_value(i);
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--help" || a == "-h") {
      usage();
    } else {
      usage("unknown option: " + a);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse(argc, argv);

  // --store-verify is a mode, not a run: checksum the store and report.
  if (!opt.store_verify_dir.empty()) {
    try {
      const store::StoreReport rep =
          store::ResultStore::verify(opt.store_verify_dir);
      std::cout << rep.to_string();
      for (const auto& name : rep.quarantined_names)
        std::cout << "\ncorrupt: " << name;
      std::cout << '\n';
      return rep.clean() ? 0 : 1;
    } catch (const std::exception& e) {
      std::cerr << "store verify failed: " << e.what() << '\n';
      return 1;
    }
  }

  // --resume re-parses the campaign argv recorded in the store's manifest,
  // so a resumed sweep is option-for-option the original one (with the
  // store forced to the resume directory, in case paths were relative).
  if (!opt.resume_dir.empty()) {
    const std::string dir = opt.resume_dir;
    const auto campaign = store::ResultStore::read_campaign(dir);
    if (!campaign || campaign->empty()) {
      std::cerr << "no campaign manifest in " << dir
                << " (was the sweep launched with --store?)\n";
      return 1;
    }
    std::vector<std::string> args = *campaign;
    std::vector<char*> cargv;
    cargv.reserve(args.size());
    for (auto& a : args) cargv.push_back(a.data());
    opt = parse(static_cast<int>(cargv.size()), cargv.data());
    opt.store_dir = dir;
    std::cerr << "resuming campaign from " << dir << '\n';
  }

  if ((opt.observing() || opt.profiling() || opt.selfprofiling()) &&
      (opt.archs.size() > 1 || opt.pressures.size() > 1))
    usage(
        "--events/--perfetto/--metrics/--profile/--selfprof need a single "
        "arch and pressure");
  if (!opt.trace_path.empty() && (opt.selfprofiling() || opt.progress))
    usage("--selfprof/--progress need a generated workload, not --trace");

  const bool direct_run =
      opt.checkpoint_every > Cycle{0} || !opt.restore_path.empty();
  if (direct_run && (opt.archs.size() > 1 || opt.pressures.size() > 1))
    usage("--checkpoint-every/--restore need a single arch and pressure");
  if (direct_run && !opt.store_dir.empty())
    usage(
        "--checkpoint-every/--restore run one simulation directly; "
        "--store/--resume apply to sweeps");

  store::install_shutdown_handler();

  // Resolve the workload (generator or trace).
  std::unique_ptr<workload::Workload> wl;
  if (!opt.trace_path.empty()) {
    try {
      wl = std::make_unique<trace::TraceWorkload>(opt.trace_path);
    } catch (const std::exception& e) {
      std::cerr << "cannot load trace: " << e.what() << '\n';
      return 1;
    }
  } else {
    wl = workload::make_workload(opt.workload, opt.scale);
    if (!wl) usage("unknown workload: " + opt.workload);
  }

  MachineConfig base;
  std::optional<obs::EventSink> sink;
  if (opt.observing() || opt.profiling()) {
    // The profiler consumes the event stream (as the sink's observer) for
    // its heat map, so --profile implies an in-memory sink even when no
    // trace export was requested.
    sink.emplace();
    base.sink = &*sink;
    if (opt.observing()) base.sample_every = opt.sample_every;
  }
  std::optional<prof::Profiler> profiler;
  if (opt.profiling()) {
    profiler.emplace();
    base.profiler = &*profiler;
  }
  if (opt.threshold) base.refetch_threshold = *opt.threshold;
  if (opt.seed) base.seed = *opt.seed;
  base.ascoma_backoff = opt.backoff;
  base.ascoma_scoma_first = opt.scoma_first;
  if (opt.store_buffer) {
    base.blocking_stores = false;
    base.store_buffer_entries = *opt.store_buffer;
  }
  base.fault_drop = opt.fault_drop;
  base.fault_dup = opt.fault_dup;
  base.fault_jitter = opt.fault_jitter;
  if (opt.fault_jitter_cycles)
    base.fault_jitter_cycles = *opt.fault_jitter_cycles;
  if (opt.fault_seed) base.fault_seed = *opt.fault_seed;
  base.watchdog_cycles = opt.watchdog_cycles;
  base.nack_busy_cycles = opt.nack_busy;
  if (opt.check_invariants) base.check_invariants = *opt.check_invariants;

  // Bind the sink to its export paths up front so an aborted run (watchdog
  // trip, invariant failure) still leaves the trace on disk.
  obs::CrashExporter crash(sink ? &*sink : nullptr, opt.events_path,
                           opt.perfetto_path, opt.metrics_path, wl->nodes());

  struct Row {
    ArchModel arch;
    double pressure;
    core::RunResult result;
  };
  std::vector<Row> rows;
  if (direct_run) {
    // Checkpointed / restored single run: drive the Machine directly so the
    // snapshot hooks are reachable (the sweep runner owns its machines).
    MachineConfig cfg = base;
    cfg.arch = opt.archs.front();
    cfg.memory_pressure = opt.pressures.front();
    struct Interrupted {};
    try {
      core::Machine m(cfg, *wl);
      if (!opt.restore_path.empty()) {
        m.restore(store::read_snapshot_file(opt.restore_path));
        std::cerr << "restored checkpoint " << opt.restore_path << '\n';
      }
      if (opt.checkpoint_every > Cycle{0}) {
        const std::string path = opt.checkpoint_file;
        m.set_checkpoint(
            opt.checkpoint_every,
            [&path](const store::Snapshot& snap, Cycle at) {
              store::write_snapshot_file(path, snap);
              std::cerr << "checkpoint written to " << path << " at cycle "
                        << at << '\n';
              // Graceful interruption lands on a checkpoint boundary: the
              // snapshot just written is the resume token.
              if (store::shutdown_requested()) throw Interrupted{};
            });
      }
      rows.push_back({cfg.arch, cfg.memory_pressure, m.run()});
    } catch (const Interrupted&) {
      if (crash.flush() > 0)
        std::cerr << "event trace flushed for post-mortem analysis\n";
      std::cerr << "interrupted; resume with: " << argv[0]
                << " ... --restore " << opt.checkpoint_file << '\n';
      return 128 + store::shutdown_signal();
    } catch (const std::exception& e) {
      std::cerr << "run failed: " << e.what() << '\n';
      if (crash.flush() > 0)
        std::cerr << "event trace flushed for post-mortem analysis\n";
      return 1;
    }
  } else if (!opt.trace_path.empty()) {
    // Trace workloads can't be reopened by name per sweep job, so they run
    // serially in-process against the one loaded TraceWorkload.
    for (ArchModel arch : opt.archs) {
      for (double pressure : opt.pressures) {
        MachineConfig cfg = base;
        cfg.arch = arch;
        cfg.memory_pressure = pressure;
        try {
          rows.push_back({arch, pressure, core::simulate(cfg, *wl)});
        } catch (const std::exception& e) {
          std::cerr << "run failed (" << to_string(arch) << ", "
                    << pressure * 100 << "%): " << e.what() << '\n';
          if (crash.flush() > 0)
            std::cerr << "event trace flushed for post-mortem analysis\n";
          return 1;
        }
        if (arch == ArchModel::kCcNuma) break;  // pressure-independent
      }
    }
  } else {
    // Generated workloads go through the sweep runner: same job order (and
    // thus byte-identical CSV) as the old serial loop, but with per-job
    // wall-time telemetry, optional --progress heartbeat, and --selfprof
    // attribution for free.
    std::vector<core::SweepJob> jobs;
    for (ArchModel arch : opt.archs) {
      for (double pressure : opt.pressures) {
        core::SweepJob j;
        j.config = base;
        j.config.arch = arch;
        j.config.memory_pressure = pressure;
        std::ostringstream label;
        label << to_string(arch) << '('
              << static_cast<int>(pressure * 100.0 + 0.5) << "%)";
        j.label = label.str();
        j.workload = opt.workload;
        j.workload_scale = opt.scale;
        jobs.push_back(std::move(j));
        if (arch == ArchModel::kCcNuma) break;  // pressure-independent
      }
    }
    core::SweepOptions sopts;
    sopts.threads = opt.threads;
    sopts.progress = opt.progress;
    sopts.progress_interval_ms = opt.progress_interval_ms;
    sopts.sink = sink ? &*sink : nullptr;
    sopts.collect = opt.selfprofiling();
    sopts.store_dir = opt.store_dir;
    sopts.stop = store::shutdown_flag();
    sopts.serve_port = opt.serve_port;
    if (opt.serve_port) {
      sopts.serve_ready = [](std::uint16_t port) {
        std::cerr << "obsd: listening on http://127.0.0.1:" << port
                  << " (/metrics /progress /jobs /events)" << std::endl;
      };
    }
    if (!opt.store_dir.empty()) {
      // Journal the campaign identity before the first job so a kill at any
      // point leaves a resumable manifest.
      try {
        store::ResultStore::write_campaign(
            opt.store_dir, std::vector<std::string>(argv, argv + argc));
      } catch (const std::exception& e) {
        std::cerr << "cannot journal campaign: " << e.what() << '\n';
        return 1;
      }
    }
    std::vector<core::SweepResult> sweep;
    try {
      sweep = core::run_sweep(std::move(jobs), sopts);
    } catch (const std::exception& e) {
      std::cerr << "run failed: " << e.what() << '\n';
      if (crash.flush() > 0)
        std::cerr << "event trace flushed for post-mortem analysis\n";
      return 1;
    }
    if (store::shutdown_requested()) {
      // Graceful shutdown: in-flight jobs drained (and journaled when a
      // store is attached); the table/CSV would be partial, so skip them.
      if (crash.flush() > 0)
        std::cerr << "event trace flushed for post-mortem analysis\n";
      std::size_t finished = 0;
      for (const auto& r : sweep)
        if (r.result.stats.parallel_cycles > Cycle{0}) ++finished;
      std::cerr << "interrupted: " << finished << '/' << sweep.size()
                << " jobs finished\n";
      if (!opt.store_dir.empty())
        std::cerr << "resume with: " << argv[0] << " --resume "
                  << opt.store_dir << '\n';
      return 128 + store::shutdown_signal();
    }
    if (opt.selfprofiling()) {
      // Single job (enforced above), so the sweep has exactly one collector.
      const auto& col = sweep.front().selfprof;
      if (col) {
        if (!col->write_dir(opt.selfprof_dir)) {
          std::cerr << "cannot write self-profile into " << opt.selfprof_dir
                    << '\n';
          return 1;
        }
        std::cout << "self-profile written to " << opt.selfprof_dir
                  << " (wall " << col->wall().value() / 1'000'000 << " ms, "
                  << col->allocs() << " allocs, peak RSS "
                  << col->peak_rss() / (1024 * 1024) << " MiB)\n";
      } else {
        std::cerr << "warning: self-profiler disabled (compiled out or "
                     "ASCOMA_SELFPROF=0), no dump written\n";
      }
    }
    rows.reserve(sweep.size());
    for (auto& r : sweep)
      rows.push_back({r.job.config.arch, r.job.config.memory_pressure,
                      std::move(r.result)});
  }

  Table t({"arch", "pressure", "cycles", "U-SH-MEM%", "K-OVERHD%", "SYNC%",
           "local miss%", "remote fetches", "upgrades", "suppressed"});
  for (const auto& r : rows) {
    const auto& time = r.result.stats.totals.time;
    const auto& m = r.result.stats.totals.misses;
    const auto& k = r.result.stats.totals.kernel;
    t.add_row({to_string(r.arch), Table::pct(r.pressure, 0),
               std::to_string(r.result.cycles().value()),
               Table::pct(time.frac(TimeBucket::kUserShared)),
               Table::pct(time.frac(TimeBucket::kKernelOvhd)),
               Table::pct(time.frac(TimeBucket::kSync)),
               Table::pct(m.total() ? static_cast<double>(m.local()) /
                                          static_cast<double>(m.total())
                                    : 0.0),
               std::to_string(m.remote()), std::to_string(k.upgrades),
               std::to_string(k.remap_suppressed)});
  }
  std::cout << "workload: " << wl->name() << "  (nodes: " << wl->nodes()
            << ", pages/node: " << wl->pages_per_node() << ")\n\n";
  t.print(std::cout);

  if (opt.verbose) {
    for (const auto& r : rows) {
      const auto& k = r.result.stats.totals.kernel;
      std::cout << "\n" << to_string(r.arch) << "(" << r.pressure * 100
                << "%): faults=" << k.page_faults
                << " scoma_allocs=" << k.scoma_allocs
                << " numa_allocs=" << k.numa_allocs
                << " upgrades=" << k.upgrades
                << " downgrades=" << k.downgrades
                << " daemon_runs=" << k.daemon_runs
                << " reclaim_failures=" << k.daemon_reclaim_failures
                << " threshold_raises=" << k.threshold_raises
                << " induced_cold=" << r.result.stats.totals.induced_cold_misses
                << " net_msgs=" << r.result.net_messages
                << " invals=" << r.result.directory_invalidations << '\n';
      // Printed only when the robustness features were exercised so the
      // zero-fault output stays byte-identical to prior releases.
      if (r.result.config.faults_configured() ||
          r.result.config.nack_busy_cycles > Cycle{0} ||
          r.result.config.watchdog_cycles > Cycles{0}) {
        std::cout << "  fault layer: injected=" << r.result.faults_injected
                  << " retransmits=" << r.result.net_retransmits
                  << " retries=" << r.result.net_retries
                  << " nacks=" << r.result.nacks << " invariants="
                  << (r.result.invariants_checked ? "checked" : "skipped")
                  << '\n';
      }
      std::cout << "  final thresholds:";
      for (auto th : r.result.final_threshold) std::cout << ' ' << th;
      std::cout << '\n';
      std::cout << "  "
                << report::backoff_trajectory(r.result,
                                              sink ? &*sink : nullptr)
                << '\n';
    }
  }

  if (sink) {
    auto export_to = [](const std::string& path, const char* what, bool ok) {
      if (!ok) {
        std::cerr << "cannot write " << what << " file: " << path << '\n';
        std::exit(1);
      }
      std::cout << what << " written to " << path << '\n';
    };
    if (!opt.events_path.empty())
      export_to(opt.events_path, "events JSONL",
                obs::write_jsonl_file(opt.events_path, *sink));
    if (!opt.perfetto_path.empty())
      export_to(opt.perfetto_path, "Perfetto trace",
                obs::write_perfetto_file(opt.perfetto_path, *sink,
                                         wl->nodes()));
    if (!opt.metrics_path.empty())
      export_to(opt.metrics_path, "metrics CSV",
                obs::write_metrics_csv_file(opt.metrics_path, *sink));
    if (sink->dropped() > 0)
      std::cerr << "warning: event buffer overflow, " << sink->dropped()
                << " events dropped (tallies remain exact)\n";
  }

  if (profiler) {
    if (!profiler->write_profile(opt.profile_dir)) {
      std::cerr << "cannot write profile into " << opt.profile_dir << '\n';
      return 1;
    }
    const auto all = profiler->merged_end_to_end();
    std::cout << "\nprofile written to " << opt.profile_dir << " ("
              << profiler->accesses() << " accesses; end-to-end p50="
              << all.p50() << " p99=" << all.p99() << " max=" << all.max()
              << " cycles)\n";
    std::cout << "\n== end-to-end latency by access class (cycles) ==\n";
    report::latency_table(*profiler).print(std::cout);
    if (profiler->attribution_mismatches() > 0)
      std::cerr << "warning: " << profiler->attribution_mismatches()
                << " accesses with attribution mismatch\n";
  }

  if (!opt.csv_path.empty()) {
    const bool fresh = !std::ifstream(opt.csv_path).good();
    std::ofstream csv(opt.csv_path, std::ios::app);
    if (!csv) {
      std::cerr << "cannot open csv file\n";
      return 1;
    }
    // With a profiler attached the run was single-config (enforced at parse
    // time), so every row gets the same profiler's latency columns.
    if (fresh) csv << report::csv_header(profiler.has_value()) << '\n';
    for (const auto& r : rows)
      csv << (profiler
                  ? report::csv_row(wl->name(), to_string(r.arch), r.result,
                                    *profiler)
                  : report::csv_row(wl->name(), to_string(r.arch), r.result))
          << '\n';
    std::cout << "\nCSV appended to " << opt.csv_path << '\n';
  }
  return 0;
}
