#!/usr/bin/env python3
"""Static protocol lints (no build needed; CI runs this on every push).

Checks, over the source text alone:

1. Transition-table totality: src/proto/transition_table.cc declares exactly
   one kProtocol row for every (DirState x ProtoMsg x ReqRel) triple — no
   unhandled state/message pair can exist, and no triple is declared twice.
   Also: a row declaring act::kFatal must promise DirNext::kFatal (and carry
   no other action bits), and vice versa.

2. Event-fold coverage: every EventKind in src/obs/event.hh has a matching
   `case obs::EventKind::k...:` fold in src/prof/profiler.cc, so no event can
   be silently dropped by the profiler/heat-map layer.  kNumEventKinds must
   equal the enumerator count.

Usage: tools/lint_protocol.py [repo-root]       (exit 0 clean, 1 findings)
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from lint_common import repo_root, report

DIR_STATES = ["kUncached", "kShared", "kExclusive"]
PROTO_MSGS = ["kGetS", "kGetX", "kFlush", "kNack"]
REQ_RELS = ["kNone", "kSharer", "kOwner"]

ROW_RE = re.compile(
    r"\{DirState::(k\w+),\s*ProtoMsg::(k\w+),\s*ReqRel::(k\w+),"
    r"\s*([^,]+?),\s*DirNext::(k\w+),",
    re.S,
)


def lint_transition_table(root: Path) -> list[str]:
    findings = []
    path = root / "src/proto/transition_table.cc"
    text = path.read_text()
    rows = ROW_RE.findall(text)
    if not rows:
        return [f"{path}: found no kProtocol rows (parser out of date?)"]

    seen: dict[tuple[str, str, str], int] = {}
    for state, msg, rel, actions, nxt in rows:
        for value, universe, what in (
            (state, DIR_STATES, "DirState"),
            (msg, PROTO_MSGS, "ProtoMsg"),
            (rel, REQ_RELS, "ReqRel"),
        ):
            if value not in universe:
                findings.append(f"{path}: unknown {what}::{value}")
        triple = (state, msg, rel)
        seen[triple] = seen.get(triple, 0) + 1

        fatal_action = "kFatal" in actions
        fatal_next = nxt == "kFatal"
        if fatal_action != fatal_next:
            findings.append(
                f"{path}: row {state} x {msg} x {rel}: act::kFatal and "
                f"DirNext::kFatal must appear together"
            )
        if fatal_action and actions.strip() != "act::kFatal":
            findings.append(
                f"{path}: row {state} x {msg} x {rel}: a fatal row must "
                f"carry no other action bits (got {actions.strip()})"
            )

    for state in DIR_STATES:
        for msg in PROTO_MSGS:
            for rel in REQ_RELS:
                n = seen.get((state, msg, rel), 0)
                if n == 0:
                    findings.append(
                        f"{path}: missing row for {state} x {msg} x {rel} "
                        f"(table not total)"
                    )
                elif n > 1:
                    findings.append(
                        f"{path}: {n} rows for {state} x {msg} x {rel} "
                        f"(triple declared more than once)"
                    )

    expected = len(DIR_STATES) * len(PROTO_MSGS) * len(REQ_RELS)
    if len(rows) != expected:
        findings.append(
            f"{path}: {len(rows)} rows declared, expected {expected}"
        )
    return findings


def lint_event_folds(root: Path) -> list[str]:
    findings = []
    event_hh = root / "src/obs/event.hh"
    profiler_cc = root / "src/prof/profiler.cc"
    text = event_hh.read_text()

    m = re.search(r"enum class EventKind[^{]*\{(.*?)\};", text, re.S)
    if not m:
        return [f"{event_hh}: EventKind enum not found"]
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    kinds = re.findall(r"\b(k[A-Z]\w*)\b\s*,?", body)
    if not kinds:
        return [f"{event_hh}: no EventKind enumerators parsed"]

    m = re.search(r"kNumEventKinds\s*=\s*(\d+)", text)
    if not m:
        findings.append(f"{event_hh}: kNumEventKinds not found")
    elif int(m.group(1)) != len(kinds):
        findings.append(
            f"{event_hh}: kNumEventKinds = {m.group(1)} but the enum has "
            f"{len(kinds)} enumerators"
        )

    prof = re.sub(r"//[^\n]*", "", profiler_cc.read_text())
    folded = set(re.findall(r"case obs::EventKind::(k\w+)\s*:", prof))
    for kind in kinds:
        if kind not in folded:
            findings.append(
                f"{profiler_cc}: EventKind::{kind} has no profiler fold "
                f"(add a case to Profiler::on_event)"
            )
    for kind in sorted(folded):
        if kind not in kinds:
            findings.append(
                f"{profiler_cc}: folds unknown EventKind::{kind} "
                f"(removed from event.hh?)"
            )
    if re.search(r"Profiler::on_event.*?default\s*:", prof, re.S):
        findings.append(
            f"{profiler_cc}: Profiler::on_event has a default: label — the "
            f"switch must stay exhaustive so -Wswitch catches new kinds"
        )
    return findings


def main() -> int:
    root = repo_root(sys.argv[1:])
    findings = lint_transition_table(root) + lint_event_folds(root)
    return report("lint_protocol", findings,
                  "transition table total; all event kinds folded")


if __name__ == "__main__":
    sys.exit(main())
