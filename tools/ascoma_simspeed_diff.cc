// ascoma_simspeed_diff — compare two BENCH_simspeed.json telemetry dumps
// (emitted by the benchmark binaries, or assembled from `ascoma --selfprof`)
// and flag simulator-speed regressions: sim-rate drops, peak-RSS growth,
// allocation-count growth.
//
//   ascoma_simspeed_diff BASELINE.json CANDIDATE.json [options]
//
// Options:
//   --rate-tol F     relative sim-rate *drop* that fails the gate
//                    (default 0.25; growth never fails)
//   --rss-tol F      relative peak-RSS growth that fails the gate (default 0.50)
//   --allocs-tol F   relative allocation-count growth that fails (default 0.25)
//   --min-wall-ms N  rows where either side ran shorter than this are too
//                    noisy for the rate check and are skipped (default 50)
//
// Exit status: 0 when no row regressed, 1 on regressions, 2 on usage or
// unreadable/malformed dumps — the same contract as ascoma_prof_diff, so CI
// gates directly on the tool.

#include <charconv>
#include <iostream>
#include <string>

#include "selfprof/simspeed.hh"

using ascoma::selfprof::SpeedDiffOptions;
using ascoma::selfprof::SpeedDiffReport;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << '\n';
  std::cerr << "usage: ascoma_simspeed_diff BASELINE.json CANDIDATE.json"
               " [--rate-tol F]\n"
               "                            [--rss-tol F] [--allocs-tol F]"
               " [--min-wall-ms N]\n";
  std::exit(2);
}

template <typename T>
T parse_number(const std::string& s, const char* what) {
  T value{};
  const auto r = std::from_chars(s.data(), s.data() + s.size(), value);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size())
    usage(std::string("bad value for ") + what + ": '" + s + "'");
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline, candidate;
  SpeedDiffOptions opts;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--rate-tol") {
      opts.rate_tol = parse_number<double>(need_value(i), "--rate-tol");
    } else if (a == "--rss-tol") {
      opts.rss_tol = parse_number<double>(need_value(i), "--rss-tol");
    } else if (a == "--allocs-tol") {
      opts.allocs_tol = parse_number<double>(need_value(i), "--allocs-tol");
    } else if (a == "--min-wall-ms") {
      opts.min_wall_ms =
          parse_number<std::uint64_t>(need_value(i), "--min-wall-ms");
    } else if (a == "--help" || a == "-h") {
      usage();
    } else if (!a.empty() && a[0] == '-') {
      usage("unknown option: " + a);
    } else if (baseline.empty()) {
      baseline = a;
    } else if (candidate.empty()) {
      candidate = a;
    } else {
      usage("too many positional arguments");
    }
  }
  if (baseline.empty() || candidate.empty())
    usage("need a baseline and a candidate BENCH_simspeed.json");

  const SpeedDiffReport rep =
      ascoma::selfprof::diff_simspeed_files(baseline, candidate, opts);
  ascoma::selfprof::write_speed_report(std::cout, rep, opts);
  if (!rep.ok()) return 2;
  return rep.regressions() > 0 ? 1 : 0;
}
