#!/usr/bin/env python3
"""Dimensional-safety lints for the strong type system (ARCHITECTURE.md §13).

Enforces, over src/ (CI runs this on every push):

1. No new bare-integer parameters for dimensioned quantities: a function
   parameter of raw integer type whose name says it is a cycle count, page,
   frame, node, address, or byte span (``*_cycle(s)``, ``*_page``,
   ``*_frame``, ``*_node``, ``*_addr``, ``*_bytes`` and the bare words)
   must use the matching strong type from src/common/types.hh instead.
   src/common/ itself is exempt — it defines the types and the raw-rep
   plumbing.  Names containing ``_per_`` are dimensionless ratios and names
   ending in a plural count (``nodes``, ``pages``…) are sizes, not ids; both
   are allowed.

2. No static_cast escapes from strong types outside the whitelisted boundary
   files: ``static_cast<double>(x.value())`` and friends are the sanctioned
   way to enter floating-point ratio math, but only inside the files listed
   in CAST_BOUNDARY_FILES (exporters, ratio/utilization math, the kernel's
   geometric period scaling).  Anywhere else, casting a strong type's raw
   value is a smell: use the named conversions.

3. Encode/decode pairing (ARCHITECTURE.md §15): every serialization function
   taking a ``store::Encoder&`` must have its decode twin — same name with
   ``encode`` -> ``decode``, taking a ``store::Decoder&`` — declared or
   defined within ENCODE_DECODE_MAX_GAP lines *after* it in the same file,
   and vice versa.  Textual adjacency is what makes a reviewer see both
   sides of a field change; the codec's section length check catches the
   drift at runtime, this rule catches it at review time.

Two front ends: libclang over build/compile_commands.json when the python
bindings are importable (AST-accurate), else a regex fallback with the same
findings format.  The finding set is a zero baseline — any new finding fails.

Usage: tools/lint_types.py [repo-root]     (exit 0 clean, 1 findings,
       tools/lint_types.py --self-test      2 usage/internal error)
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from lint_common import (iter_sources, load_libclang, repo_root,
                         strip_comments)

# Parameter-name suffixes that imply a dimension, and the strong type the
# parameter should use instead.  Extend this table together with types.hh
# when adding a new dimension.
DIMENSIONS = {
    "cycle": "Cycle",
    "cycles": "Cycle",
    "page": "PageId",
    "frame": "FrameId",
    "node": "NodeId",
    "addr": "Addr (or LineAddr)",
    "bytes": "ByteCount",
    "ns": "selfprof::HostNs",
}

# Raw integer spellings that count as "bare" for rule 1.
INT_TYPE_RE = re.compile(
    r"(?:const\s+)?(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|unsigned(?:\s+int)?)\s*$"
)

# Sanctioned numeric-boundary files for rule 2: double-precision ratio and
# scaling math plus the machine-readable exporters.  Keep this list short —
# a new entry needs a reason of the same kind.
CAST_BOUNDARY_FILES = {
    "src/arch/backoff_kernel.hh",  # geometric daemon-period scaling
    "src/common/stats.cc",         # time-bucket / miss-fraction ratios
    "src/common/types.hh",         # IdVector's size_t bridge
    "src/mem/cache.hh",            # set-index bit math on line numbers
    "src/mem/rac.hh",              # set-index bit math on block numbers
    "src/prof/profiler.cc",        # perf-baseline JSON exporter
    "src/report/report.cc",        # CSV/latency-table exporter
    "src/sim/resource.cc",         # utilization ratio
    "src/trace/trace.cc",          # fixed-width binary trace header I/O
    "src/selfprof/clock.cc",       # TSC-tick -> nanosecond calibration
    "src/selfprof/collector.cc",   # sim-rate ratios, JSON/CSV exporter
    "src/core/sweep.cc",           # per-job sim-rate / ETA / median math
    "src/core/sweep_status.cc",    # status-board JSON exporter (sim-rate ratio)
}

CAST_ESCAPE_RE = re.compile(
    r"static_cast<\s*(?:const\s+)?(?:std::)?"
    r"(?:u?int(?:8|16|32|64)_t|size_t|double|float|unsigned(?:\s+int)?|int|long)"
    r"[^>]*>\s*\([^;,]*?(?:\.|->)value\(\)"
)

PARAM_FALLBACK_RE = re.compile(
    r"(?:^|[(,])\s*((?:const\s+)?(?:std::)?"
    r"(?:u?int(?:8|16|32|64)_t|size_t|unsigned(?:\s+int)?))\s*&?\s*"
    r"([A-Za-z_]\w*)\s*(?=[,)])"
)


def dimension_of(name: str):
    """The dimension a parameter name claims, or None."""
    low = name.lower()
    if "_per_" in low:
        return None  # ratios are dimensionless
    for suffix, strong in DIMENSIONS.items():
        if low == suffix or low.endswith("_" + suffix):
            return strong
    return None


# ---- rule 1: bare-integer parameters ----------------------------------------


def lint_params_regex(root: Path) -> list:
    findings = []
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/common/"):
            continue
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            for m in PARAM_FALLBACK_RE.finditer(line):
                name = m.group(2)
                strong = dimension_of(name)
                if strong is None:
                    continue
                findings.append(
                    f"{rel}:{lineno}: bare-integer parameter '{name}' "
                    f"({m.group(1).strip()}) names a dimensioned quantity — "
                    f"use {strong}"
                )
    return findings


def lint_params_libclang(root: Path, index, compdb) -> list:
    from clang import cindex

    findings = []
    seen = set()
    for entry in compdb:
        src = Path(entry["file"])
        try:
            rel = src.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
        if not rel.startswith("src/") or rel.startswith("src/common/"):
            continue
        args = [a for a in entry["arguments"][1:] if a not in ("-c", "-o")]
        tu = index.parse(str(src), args=args[:-1])
        for cur in tu.cursor.walk_preorder():
            if cur.kind != cindex.CursorKind.PARM_DECL:
                continue
            loc = cur.location
            if loc.file is None or Path(loc.file.name).resolve() != src.resolve():
                continue
            canon = cur.type.get_canonical()
            if canon.kind not in (
                cindex.TypeKind.UINT, cindex.TypeKind.ULONG,
                cindex.TypeKind.ULONGLONG, cindex.TypeKind.USHORT,
                cindex.TypeKind.UCHAR, cindex.TypeKind.INT,
                cindex.TypeKind.LONG, cindex.TypeKind.LONGLONG,
            ):
                continue
            strong = dimension_of(cur.spelling or "")
            if strong is None:
                continue
            key = (rel, loc.line, cur.spelling)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                f"{rel}:{loc.line}: bare-integer parameter '{cur.spelling}' "
                f"({cur.type.spelling}) names a dimensioned quantity — "
                f"use {strong}"
            )
    return findings


# ---- rule 2: static_cast escapes --------------------------------------------


def lint_cast_escapes(root: Path) -> list:
    findings = []
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel in CAST_BOUNDARY_FILES:
            continue
        text = strip_comments(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            if CAST_ESCAPE_RE.search(line):
                findings.append(
                    f"{rel}:{lineno}: static_cast escape from a strong type "
                    f"outside the whitelisted boundary files — use a named "
                    f"conversion, or add this file to CAST_BOUNDARY_FILES "
                    f"with a reason"
                )
    return findings


# ---- rule 3: encode/decode pairing ------------------------------------------

# A signature (declaration or definition) that takes the codec's Encoder or
# Decoder by reference.  Call sites pass values, not types, so they never
# match.
# \s includes newlines: signatures that wrap after the function name (long
# parameter types) still match when scanned over the whole file text.
ENCODE_SIG_RE = re.compile(r"\b(\w*encode\w*)\s*\(\s*(?:ascoma::)?(?:store::)?Encoder\s*&")
DECODE_SIG_RE = re.compile(r"\b(\w*decode\w*)\s*\(\s*(?:ascoma::)?(?:store::)?Decoder\s*&")

# Widest allowed distance from an encode signature to its decode twin (the
# longest encoder body in the tree is encode_config at ~63 lines; keep the
# bound tight enough that "adjacent" stays meaningful).
ENCODE_DECODE_MAX_GAP = 80


def lint_encode_decode_pairs(root: Path) -> list:
    findings = []
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        text = strip_comments(path.read_text())
        encodes = []  # (lineno, name)
        decodes = []
        for m in ENCODE_SIG_RE.finditer(text):
            encodes.append((text.count("\n", 0, m.start()) + 1, m.group(1)))
        for m in DECODE_SIG_RE.finditer(text):
            decodes.append((text.count("\n", 0, m.start()) + 1, m.group(1)))
        for lineno, name in encodes:
            twin = name.replace("encode", "decode")
            if not any(
                d_name == twin and lineno < d_line <= lineno + ENCODE_DECODE_MAX_GAP
                for d_line, d_name in decodes
            ):
                findings.append(
                    f"{rel}:{lineno}: '{name}(store::Encoder&)' has no "
                    f"'{twin}(store::Decoder&)' within "
                    f"{ENCODE_DECODE_MAX_GAP} lines after it — keep "
                    f"encode/decode pairs textually adjacent"
                )
        for lineno, name in decodes:
            twin = name.replace("decode", "encode")
            if not any(
                e_name == twin and lineno - ENCODE_DECODE_MAX_GAP <= e_line < lineno
                for e_line, e_name in encodes
            ):
                findings.append(
                    f"{rel}:{lineno}: '{name}(store::Decoder&)' has no "
                    f"'{twin}(store::Encoder&)' within "
                    f"{ENCODE_DECODE_MAX_GAP} lines before it — keep "
                    f"encode/decode pairs textually adjacent"
                )
    return findings


# ---- driver -----------------------------------------------------------------


def run(root: Path) -> list:
    ast = load_libclang(root)
    if ast is not None:
        findings = lint_params_libclang(root, *ast)
        mode = "libclang"
    else:
        findings = lint_params_regex(root)
        mode = "regex fallback"
    findings += lint_cast_escapes(root)
    findings += lint_encode_decode_pairs(root)
    return findings, mode


SELF_TEST_BAD = """
namespace ascoma {
void advance(std::uint64_t now_cycles, std::uint32_t home_node);
void map_page(uint64_t page, std::size_t frame);
void sleep_for(std::uint64_t wall_ns);
inline double f(Cycle c) { return static_cast<double>(c.value()); }
void encode(store::Encoder& e);
void encode_widget(store::Encoder& e, const Widget& w);
void decode_widget(store::Decoder& d, Widget* w);
void decode_orphan(store::Decoder& d);
}
"""


def self_test(root: Path) -> int:
    """The linter must reject a known-bad snippet (negative test for CI)."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        bad_root = Path(tmp)
        from lint_common import write_src_tree
        write_src_tree(bad_root, {"src/sim/bad.hh": SELF_TEST_BAD})
        findings = (lint_params_regex(bad_root) + lint_cast_escapes(bad_root)
                    + lint_encode_decode_pairs(bad_root))
    # encode_widget/decode_widget are adjacent and must NOT be flagged; the
    # bare 'encode' and 'decode_orphan' have no twins and must be.
    if any("encode_widget" in f for f in findings):
        print("lint_types: SELF-TEST FAILED — flagged a paired encode")
        return 1
    wanted = ["now_cycles", "home_node", "'page'", "'frame'", "wall_ns",
              "static_cast escape", "'encode(store::Encoder&)' has no",
              "'decode_orphan(store::Decoder&)' has no"]
    missing = [w for w in wanted if not any(w in f for f in findings)]
    if missing:
        print(f"lint_types: SELF-TEST FAILED — did not flag: {missing}")
        for f in findings:
            print(f"  (got) {f}")
        return 1
    print(f"lint_types: self-test OK ({len(findings)} findings on the bad "
          f"snippet, all expected patterns flagged)")
    return 0


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    if "--self-test" in argv:
        argv.remove("--self-test")
        return self_test(repo_root(argv))
    if len(argv) > 1:
        print(__doc__)
        return 2
    root = repo_root(argv)
    findings, mode = run(root)
    for f in findings:
        print(f"lint_types: {f}")
    if findings:
        print(f"lint_types: {len(findings)} finding(s) [{mode}]")
        return 1
    print(f"lint_types: OK [{mode}] (no bare-integer dimension parameters; "
          f"no static_cast escapes outside boundary files; all encode/decode "
          f"pairs adjacent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
