#!/usr/bin/env python3
"""Memory-order and lock-discipline linter for the cross-thread plane.

Four rules over everything under src/ (ARCHITECTURE.md §18):

C1  Every std::atomic operation names an explicit memory_order and is
    covered by a `// order:` rationale comment — directly above its
    statement, or above the contiguous run of atomic statements it ends
    (one block may justify a burst of related operations).  Operator
    writes to atomics (`flag = true`, `n++`) are banned outright: the
    sequentially-consistent default they hide is exactly the unreviewed
    ordering decision this rule exists to surface.

C2  No raw standard sync primitive outside src/common/sync.hh: std::mutex,
    std::lock_guard, std::unique_lock, std::condition_variable (and
    friends, and their includes) appear only inside the annotated wrappers,
    so -Wthread-safety sees every lock in the tree.  Manual .lock()/
    .unlock() calls on the wrapped Mutex are banned too — regions must be
    scoped (LockGuard) for the held-region analysis below to be sound.

C3  Lock hierarchy: every LockGuard must name a lock declared in
    LOCK_HIERARCHY; while a lock is held, any further acquisition — direct
    or through a callee (transitive acquire sets over the shared
    call-graph model) — must move strictly down the hierarchy, and a leaf
    lock (LEAF_LOCKS) admits no second acquisition at all.  Today every
    lock in the tree is a leaf: the plane is deadlock-free by construction
    and this rule keeps it that way.

C4  No blocking I/O while holding a lock: syscalls (::poll/::read/
    ::write/::accept/::fsync/...), stdio, fstreams, EventSink::emit — and
    no operator<< streaming or ostringstream building either, since the
    stream behind a handler may be a blocking socket.  Checked directly in
    each held region and transitively through callees.  C4_IO_BOUNDARY
    lists the deliberate exceptions (the manifest journal, whose
    one-fsynced-line-at-a-time contract makes the I/O the critical
    section).

Front ends (shared with lint_hotpath via lint_common): libclang +
compile_commands.json when available, else the regex call-graph model —
the operative mode in CI, where linting runs before configure.  The
textual rules (C1/C2) are front-end independent.

Exit codes: 0 clean, 1 findings, 2 usage error.
Usage: lint_concurrency.py [--self-test] [repo-root]
"""

import re
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from lint_common import (build_model, build_model_libclang, iter_sources,
                         load_libclang, match_brace, repo_root, report,
                         strip_comments, write_src_tree,
                         LOCAL_RE, RECEIVER_CALL_RE, QUALIFIED_CALL_RE,
                         BARE_CALL_RE, GENERIC_METHODS, NOT_FUNC_NAMES,
                         all_subclasses)

# ---------------------------------------------------------------------------
# The declared lock hierarchy (C3), outermost first.  A lock acquired while
# another is held must sit strictly later in this list; LEAF_LOCKS admit no
# nested acquisition at all.  Adding a lock to the plane means adding it
# here — an undeclared LockGuard is itself a finding.
# ---------------------------------------------------------------------------
LOCK_HIERARCHY = [
    "Registry::mu_",         # obs/metrics.hh     — registration structures
    "EventTail::mu_",        # obs/tail.hh        — event ring buffer
    "SweepStatusBoard::mu_", # core/sweep_status  — per-job status table
    "Heartbeat::mu",         # core/sweep.cc      — heartbeat stop/condvar slot
    "ErrorSlot::mu",         # core/sweep.cc      — first-thrower exception slot
    "manifest_mu",           # store/store.cc     — manifest journal serializer
]
LEAF_LOCKS = frozenset(LOCK_HIERARCHY)  # every lock is a leaf today

# Functions whose held-region I/O is the point (C4 exemptions, each with a
# rationale at its definition site).
C4_IO_BOUNDARY = frozenset({
    "append_manifest_line",  # store/store.cc: the fsync'd line *is* the
                             # critical section (durability contract)
})

SKIP_FILES = ("src/common/annotate.hh", "src/common/sync.hh")

ATOMIC_OP_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\[\]]*\])?\s*(?:\.|->)\s*"
    r"(load|store|exchange|compare_exchange_weak|compare_exchange_strong|"
    r"fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor)\s*\(")

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_timed_mutex|recursive_mutex|shared_mutex|"
    r"timed_mutex|mutex|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable_any|condition_variable)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
    r"|\bpthread_(?:mutex|cond|rwlock)\w*")

MUTEX_DECL_RE = re.compile(r"\b(?:ascoma\s*::\s*)?Mutex\s+([A-Za-z_]\w*)\s*[;{=]")

LOCKGUARD_RE = re.compile(
    r"\b(?:ascoma\s*::\s*)?LockGuard\s+\w+\s*[({]\s*([^;(){}]+?)\s*[)}]")

# Blocking / externally-visible I/O: propagated transitively (does-I/O sets).
IO_PROP_RE = re.compile(
    r"::\s*(?:poll|select|read|write|send|recv|accept|open|close|fsync|"
    r"fdatasync|listen|bind|connect|unlink|rename)\s*\("
    r"|\b(?:fopen|fread|fwrite|fprintf|fputs|fflush|fclose)\s*\("
    r"|\bstd\s*::\s*(?:ofstream|ifstream|fstream)\b"
    r"|\bstd\s*::\s*c(?:out|err|log)\b"
    r"|(?:\.|->)\s*emit\s*\(")

# String/stream building: flagged only when directly inside a held region
# (formatting belongs after the snapshot, not under the lock).
STREAM_RE = re.compile(r"\b[A-Za-z_]\w*\s*<<|\bostringstream\b")


def mask_comments(text: str) -> str:
    """Blank out comments, preserving offsets and line structure, so token
    scans skip prose while line numbers still match the original."""
    def repl(m):
        return "".join(c if c == "\n" else " " for c in m.group(0))
    text = re.sub(r"//[^\n]*", repl, text)
    return re.sub(r"/\*.*?\*/", repl, text, flags=re.S)


def call_args(text: str, open_idx: int) -> str:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i]
    return text[open_idx + 1:]


def stmt_start(lines: list, i: int) -> int:
    """First line of the statement containing line i: walk up while the
    previous line does not terminate a statement (comment lines are blank
    in the masked text, so they terminate too)."""
    while i > 0:
        prev = lines[i - 1].strip()
        if prev == "" or prev.endswith((";", "{", "}", ":")):
            break
        i -= 1
    return i


def has_order_rationale(orig_lines, masked_lines, op_line: int) -> bool:
    """C1: an `order:` comment on the op's line, directly above its
    statement, or above the contiguous run of atomic statements it ends."""
    if "order:" in orig_lines[op_line]:
        return True
    i = stmt_start(masked_lines, op_line)
    for _ in range(8):
        j = i - 1
        seen_comment = False
        while j >= 0 and orig_lines[j].lstrip().startswith("//"):
            seen_comment = True
            if "order:" in orig_lines[j]:
                return True
            j -= 1
        if seen_comment or i == 0:
            return False  # a comment block without a rationale doesn't count
        # Skip over an immediately preceding atomic-op statement (one
        # rationale block may cover a burst of related operations).
        e = i - 1
        if masked_lines[e].strip() == "":
            return False
        s = stmt_start(masked_lines, e)
        stmt = " ".join(masked_lines[s:e + 1])
        if ATOMIC_OP_RE.search(stmt) and "memory_order" in stmt:
            i = s
            continue
        return False
    return False


# ---------------------------------------------------------------------------
# C1 + C2: textual, per file.
# ---------------------------------------------------------------------------

def lint_files(root: Path, findings: list) -> int:
    files = []  # (rel, orig_lines, masked, masked_lines)
    atomic_names, pointer_names = set(), set()
    per_file_atomics = {}
    mutex_names = set()
    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        if rel in SKIP_FILES:
            continue
        orig = path.read_text()
        masked = mask_comments(orig)
        mlines = masked.splitlines()
        files.append((rel, orig.splitlines(), masked, mlines))
        names = set()
        for line in mlines:
            if "std::atomic" in line:
                m = re.search(
                    r"([A-Za-z_]\w*)\s*(?:\{[^{}]*\})?\s*(?:=[^;]*)?;", line)
                if m:
                    names.add(m.group(1))
                    if re.search(r">\s*\*", line):
                        pointer_names.add(m.group(1))
            for mm in MUTEX_DECL_RE.finditer(line):
                mutex_names.add(mm.group(1))
        atomic_names |= names
        # A non-atomic declaration of the same name in the same file
        # (e.g. Snapshot::sum shadowing Shard::sum) makes plain writes to
        # it legitimate — drop such names from the operator-write check
        # only (precision over recall; the receiver-op scan still covers
        # every .load/.store/fetch_op on them).
        for name in sorted(names):
            for line in mlines:
                if "atomic" not in line and re.search(
                        rf"\b[\w:]+(?:<[^;]*>)?\s+{name}\s*[=;{{]", line):
                    names.discard(name)
                    break
        per_file_atomics[rel] = names

    ops = 0
    manual_lock_re = re.compile(
        r"\b(?:" + "|".join(sorted(mutex_names)) +
        r")\s*\.\s*(?:try_lock|lock|unlock)\s*\(") if mutex_names else None
    for rel, olines, masked, mlines in files:
        # C1a/C1b: explicit order + rationale on every atomic op.
        for m in ATOMIC_OP_RE.finditer(masked):
            if m.group(1) not in atomic_names:
                continue
            ops += 1
            line_no = masked.count("\n", 0, m.start())
            where = f"{rel}:{line_no + 1}"
            args = call_args(masked, masked.index("(", m.end() - 1))
            if "memory_order" not in args:
                findings.append(
                    f"{where} [C1] atomic {m.group(2)}() on '{m.group(1)}' "
                    "names no explicit memory_order")
            if not has_order_rationale(olines, mlines, line_no):
                findings.append(
                    f"{where} [C1] atomic {m.group(2)}() on '{m.group(1)}' "
                    "has no `// order:` rationale above its statement")
        # C1c: operator writes on atomics declared in this file.
        wr = sorted(per_file_atomics[rel] - pointer_names)
        if wr:
            pat = re.compile(
                r"(?<![\w.>])(" + "|".join(wr) +
                r")\s*(?:\+\+|--|(?:[+\-|&^]|<<|>>)?=(?!=))"
                r"|(?:\+\+|--)\s*(" + "|".join(wr) + r")\b")
            for m in pat.finditer(masked):
                line_no = masked.count("\n", 0, m.start())
                if "std::atomic" in mlines[line_no]:
                    continue  # the declaration itself
                name = m.group(1) or m.group(2)
                findings.append(
                    f"{rel}:{line_no + 1} [C1] operator write to atomic "
                    f"'{name}' hides a seq_cst ordering decision — use "
                    "store/fetch_op with an explicit memory_order")
        # C2: raw standard sync primitives; manual lock()/unlock().
        for m in RAW_SYNC_RE.finditer(masked):
            line_no = masked.count("\n", 0, m.start())
            findings.append(
                f"{rel}:{line_no + 1} [C2] raw sync primitive "
                f"'{m.group(0).strip()}' outside src/common/sync.hh — use "
                "the annotated ascoma::Mutex/LockGuard/CondVar wrappers")
        if manual_lock_re:
            for m in manual_lock_re.finditer(masked):
                line_no = masked.count("\n", 0, m.start())
                findings.append(
                    f"{rel}:{line_no + 1} [C2] manual "
                    f"'{m.group(0).strip()}' — acquire through a scoped "
                    "LockGuard so held regions stay analyzable")
    return ops


# ---------------------------------------------------------------------------
# C3 + C4: held regions over the call-graph model.
# ---------------------------------------------------------------------------

def struct_instance_hints(body: str) -> dict:
    """{instance: StructName} for function-local `struct S {...} s;`
    declarations (the sweep's ErrorSlot/Heartbeat pattern)."""
    hints = {}
    for m in re.finditer(r"\bstruct\s+(\w+)\s*\{", body):
        close = match_brace(body, m.end() - 1)
        mm = re.match(r"\s*(\w+)\s*;", body[close + 1:])
        if mm:
            hints[mm.group(1)] = m.group(1)
    return hints


def lock_id(expr: str, fn, model, hints: dict) -> str:
    """Resolve a LockGuard argument to its hierarchy identity:
    Class::member for members (via receiver type hints or the enclosing
    class), the bare name for file-scope locks."""
    expr = re.sub(r"\s+", "", expr)
    m = re.fullmatch(r"(\w+)(?:\.|->)(\w+)", expr)
    if m:
        recv, memb = m.groups()
        hint = hints.get(recv) or fn.param_hints.get(recv) or \
            (model.member_types.get(recv) or (None,))[0]
        return f"{hint}::{memb}" if hint else expr
    if re.fullmatch(r"\w+", expr) and "::" in fn.qual:
        return f"{fn.qual.split('::')[0]}::{expr}"
    return expr


def region_end(body: str, start: int) -> int:
    """End of the enclosing block: a LockGuard holds until its scope
    closes."""
    depth = 0
    for i in range(start, len(body)):
        if body[i] == "{":
            depth += 1
        elif body[i] == "}":
            depth -= 1
            if depth < 0:
                return i
    return len(body)


def region_callees(model, fn, region: str, hints: dict) -> set:
    """Resolve the calls inside one held region (same precision-over-recall
    rules as lint_common.resolve_calls, scoped to the region text)."""
    local_hints = dict(fn.param_hints)
    for m in LOCAL_RE.finditer(strip_comments(fn.body)):
        local_hints.setdefault(m.group(2), m.group(1).split("::")[-1])
    local_hints.update(hints)
    own = fn.qual.split("::")[0] if "::" in fn.qual else None
    out = set()

    def by_class_hint(cls, method):
        for c in [cls] + sorted(all_subclasses(model, cls)):
            q = f"{c}::{method}"
            if q in model.defs:
                out.add(q)

    for m in RECEIVER_CALL_RE.finditer(region):
        recv, method = m.group(1), m.group(2)
        matches = model.by_simple.get(method, [])
        if not matches:
            continue
        if recv == "this":
            hint = own
        else:
            hint = local_hints.get(recv) or \
                (model.member_types.get(recv) or (None,))[0]
        if hint:
            by_class_hint(hint, method)
        elif len(matches) == 1 and method not in GENERIC_METHODS:
            out.add(matches[0])
    for m in QUALIFIED_CALL_RE.finditer(region):
        q = f"{m.group(1)}::{m.group(2)}"
        if q in model.defs:
            out.add(q)
    for m in BARE_CALL_RE.finditer(region):
        name = m.group(1)
        if name in NOT_FUNC_NAMES:
            continue
        matches = model.by_simple.get(name, [])
        if len(matches) == 1:
            out.add(matches[0])
        elif matches and own:
            by_class_hint(own, name)
    return out - {fn.qual}


def lint_model(model, hierarchy, leaves, io_boundary, findings) -> int:
    rank = {name: i for i, name in enumerate(hierarchy)}
    info = {}  # qual -> (body, hints, [(lock_id, start, end)])
    for qual, fn in model.defs.items():
        body = strip_comments(fn.body)
        hints = struct_instance_hints(body)
        sites = []
        for m in LOCKGUARD_RE.finditer(body):
            sites.append((lock_id(m.group(1), fn, model, hints),
                          m.end(), region_end(body, m.end())))
        info[qual] = (body, hints, sites)

    # Transitive acquire sets and does-I/O sets (fixpoint over call edges).
    trans = {q: {s[0] for s in info[q][2]} for q in info}
    does_io = {q: bool(IO_PROP_RE.search(info[q][0])) for q in info}
    changed = True
    while changed:
        changed = False
        for q, fn in model.defs.items():
            for c in fn.callees:
                add = trans.get(c, set()) - trans[q]
                if add:
                    trans[q] |= add
                    changed = True
                if does_io.get(c) and not does_io[q]:
                    does_io[q] = True
                    changed = True

    regions = 0
    for qual in sorted(info):
        fn = model.defs[qual]
        body, hints, sites = info[qual]
        for lid, s, e in sites:
            regions += 1
            line = fn.line + body[:s].count("\n")
            where = f"{fn.rel}:{line} ({qual})"
            if lid not in rank:
                findings.append(
                    f"{where} [C3] LockGuard on '{lid}' which is not in the "
                    "declared LOCK_HIERARCHY — declare it (and its rank)")
                continue
            region = body[s:e]
            for m in LOCKGUARD_RE.finditer(region):
                nid = lock_id(m.group(1), fn, model, hints)
                if lid in leaves:
                    findings.append(
                        f"{where} [C3] acquires '{nid}' while holding leaf "
                        f"lock '{lid}' — leaves admit no nesting")
                elif nid in rank and rank[nid] <= rank[lid]:
                    findings.append(
                        f"{where} [C3] acquires '{nid}' (rank {rank[nid]}) "
                        f"while holding '{lid}' (rank {rank[lid]}) — "
                        "hierarchy inversion")
                elif nid not in rank:
                    findings.append(
                        f"{where} [C3] acquires undeclared lock '{nid}' "
                        f"while holding '{lid}'")
            callees = region_callees(model, fn, region, hints)
            for c in sorted(callees):
                for nid in sorted(trans.get(c, ())):
                    if lid in leaves:
                        findings.append(
                            f"{where} [C3] calls {c}() which acquires "
                            f"'{nid}' while leaf lock '{lid}' is held")
                    elif nid in rank and rank[nid] <= rank[lid]:
                        findings.append(
                            f"{where} [C3] calls {c}() which acquires "
                            f"'{nid}' (rank {rank[nid]}) under '{lid}' "
                            f"(rank {rank[lid]}) — hierarchy inversion")
                if does_io.get(c) and qual not in io_boundary:
                    findings.append(
                        f"{where} [C4] calls {c}() which performs blocking "
                        f"I/O while '{lid}' is held — snapshot under the "
                        "lock, do the I/O after")
            if qual in io_boundary:
                continue
            for m in IO_PROP_RE.finditer(region):
                findings.append(
                    f"{where} [C4] blocking I/O '{m.group(0).strip()}' "
                    f"while '{lid}' is held")
            for m in STREAM_RE.finditer(region):
                findings.append(
                    f"{where} [C4] stream/string building "
                    f"'{m.group(0).strip()}' while '{lid}' is held — "
                    "format outside the lock")
    return regions


def run(root: Path, hierarchy=None, leaves=None, io_boundary=None):
    hierarchy = LOCK_HIERARCHY if hierarchy is None else hierarchy
    leaves = LEAF_LOCKS if leaves is None else leaves
    io_boundary = C4_IO_BOUNDARY if io_boundary is None else io_boundary
    findings = []
    ops = lint_files(root, findings)
    ast = load_libclang(root)
    if ast is not None:
        model = build_model_libclang(root, *ast)
        mode = "ast"
    else:
        model = build_model(root, annotations={})
        mode = "regex"
    regions = lint_model(model, hierarchy, leaves, io_boundary, findings)
    return sorted(set(findings)), mode, ops, regions


# ---------------------------------------------------------------------------
# Self-test: seeded-violation fixture trees, one per rule.
# ---------------------------------------------------------------------------

FIX_HH = """#pragma once
#include <atomic>
namespace n {
class A {
 public:
  void poke();
  void touch();
  void dump(std::ostream& os);
 private:
  Mutex mu_;
  int v_ ASCOMA_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
};
class B {
 public:
  void cross(A& a);
  void grab();
 private:
  Mutex mu_;
  int w_ ASCOMA_GUARDED_BY(mu_);
};
}
"""

FIX_OK_CC = """#include "x/ab.hh"
namespace n {
void A::poke() {
  // order: relaxed — monotonic tally; scrapes tolerate lag.
  hits_.fetch_add(1, std::memory_order_relaxed);
  const LockGuard g(mu_);
  v_ += 1;
}
void A::touch() { poke(); }
}
"""

FIX_HIER = ["A::mu_", "B::mu_"]

FIXTURES = [
    ("pristine", {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": FIX_OK_CC},
     FIX_HIER, frozenset(), frozenset(), []),
    ("c1-missing-order",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::poke() {
  // order: relaxed — tally.
  hits_.fetch_add(1);
}
}
"""}, FIX_HIER, frozenset(), frozenset(),
     ["[C1]", "no explicit memory_order"]),
    ("c1-missing-rationale",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::poke() {
  v_ = 0;
  hits_.fetch_add(1, std::memory_order_relaxed);
}
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C1]", "order:` rationale"]),
    ("c1-operator-write",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
std::atomic<bool> on{false};
void A::poke() { on = true; }
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C1]", "operator write"]),
    ("c2-raw-mutex",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
#include <mutex>
namespace n {
std::mutex raw_mu;
void A::poke() { std::lock_guard<std::mutex> g(raw_mu); }
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C2]", "raw sync primitive"]),
    ("c2-manual-lock",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::poke() {
  mu_.lock();
  v_ += 1;
  mu_.unlock();
}
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C2]", "manual"]),
    ("c3-undeclared",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
Mutex rogue_mu;
void stray() { const LockGuard g(rogue_mu); }
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C3]", "not in the declared"]),
    ("c3-inversion",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void B::cross(A& a) {
  const LockGuard g(mu_);
  const LockGuard g2(a.mu_);
}
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C3]", "hierarchy inversion"]),
    ("c3-second-lock-under-leaf",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::cross(B& b) {
  const LockGuard g(mu_);
  const LockGuard g2(b.mu_);
}
}
"""}, FIX_HIER, frozenset({"A::mu_"}), frozenset(),
     ["[C3]", "leaf", "no nesting"]),
    ("c3-transitive-acquire",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void B::grab() { const LockGuard g(mu_); w_ += 1; }
void B::cross(A& a) {
  const LockGuard g2(a.mu_);
  grab();
}
}
"""}, ["A::mu_", "B::mu_"], frozenset({"A::mu_"}), frozenset(),
     ["[C3]", "grab", "leaf lock 'A::mu_' is held"]),
    ("c4-direct-io",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::poke() {
  const LockGuard g(mu_);
  ::write(1, "x", 1);
}
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C4]", "blocking I/O"]),
    ("c4-transitive-io",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void flushit() { ::fsync(0); }
void A::poke() {
  const LockGuard g(mu_);
  flushit();
}
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C4]", "flushit"]),
    ("c4-stream-under-lock",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::dump(std::ostream& os) {
  const LockGuard g(mu_);
  os << v_;
}
}
"""}, FIX_HIER, frozenset(), frozenset(), ["[C4]", "stream"]),
    ("c4-io-boundary-exempt",
     {"src/x/ab.hh": FIX_HH, "src/x/ab.cc": """#include "x/ab.hh"
namespace n {
void A::poke() {
  const LockGuard g(mu_);
  ::write(1, "x", 1);
}
}
"""}, FIX_HIER, frozenset(), frozenset({"A::poke"}), []),
]


def self_test() -> int:
    failures = 0
    for name, files, hierarchy, leaves, boundary, expect in FIXTURES:
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            write_src_tree(root, files)
            findings, _, _, _ = run(root, hierarchy, leaves, boundary)
        blob = " ".join(findings)
        if not expect:
            if findings:
                failures += 1
                print(f"SELF-TEST FAIL [{name}]: wanted clean, got:")
                for f in findings:
                    print(f"  {f}")
            continue
        missing = [e for e in expect if e not in blob]
        if missing:
            failures += 1
            print(f"SELF-TEST FAIL [{name}]: missing {missing}, got:")
            for f in findings:
                print(f"  {f}")
    if failures:
        print(f"lint_concurrency self-test: {failures} fixture(s) failed")
        return 1
    print(f"lint_concurrency self-test: all {len(FIXTURES)} fixtures pass")
    return 0


def main(argv: list) -> int:
    if argv and argv[0] == "--self-test":
        return self_test()
    if any(a.startswith("-") for a in argv) or len(argv) > 1:
        print(__doc__)
        return 2
    root = repo_root(argv)
    if not (root / "src").is_dir():
        print(f"lint_concurrency: no src/ under {root}")
        return 2
    findings, mode, ops, regions = run(root)
    return report(
        "lint_concurrency", findings,
        f"{ops} atomic op(s), {regions} held region(s), "
        f"{len(LOCK_HIERARCHY)} declared lock(s)", mode)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
