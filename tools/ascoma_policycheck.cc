// ascoma_policycheck — exhaustive checker for the AS-COMA adaptive policy
// state machine (src/check/policy_model.*).
//
// Explores every reachable state of a small abstract configuration of the
// policy layer — free-pool level x per-page refetch counters x refetch
// threshold x daemon period x remap-enabled bit — driving the very
// arch::BackoffKernel the simulator executes, and checks the paper's §2
// claims: back-off monotonicity under sustained pressure, convergence to
// pure CC-NUMA behaviour when reclaim keeps failing, recovery of S-COMA
// mapping when pressure drops, and no upgrade while remapping is disabled.
// On violation, prints (and optionally writes) a BFS-minimal counterexample
// trace and exits 1.  Run it before and after any change to
// src/arch/backoff_kernel.hh or src/arch/ascoma.cc — CI does.
//
// Exit codes: 0 = all properties hold; 1 = violation found; 2 = usage error
// or search truncated (state cap hit before the space was exhausted).
//
// Examples:
//   ascoma_policycheck --nodes 2 --pages 2
//   ascoma_policycheck --nodes 1 --pages 4 --frames 2 --touches 6
//   ascoma_policycheck --mutation upgrade-while-disabled   # must report

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "check/policy_model.hh"

namespace {

namespace check = ascoma::check;

void usage(std::ostream& os) {
  os << "usage: ascoma_policycheck [options]\n"
        "  --nodes N            nodes in the model, 1..4 (default 2)\n"
        "  --pages N            remote pages per node, 1..4 (default 2)\n"
        "  --frames N           S-COMA pool frames per node, 1..3 "
        "(default 1)\n"
        "  --touches N          page-touch budget per node (default 4)\n"
        "  --daemon-runs N      pageout-daemon budget per node (default 6)\n"
        "  --mutation NAME      check a known-bad policy mutation\n"
        "                       (none|threshold-never-raised|"
        "period-not-lengthened|\n"
        "                        upgrade-while-disabled|upgrade-ignores-pool|"
        "thrashing-sticky)\n"
        "  --dfs                depth-first search (default: BFS, minimal "
        "traces)\n"
        "  --full-interleaving  explore the full node product (default: "
        "node-ordered\n"
        "                       persistent set; nodes share no policy "
        "state)\n"
        "  --max-states N       visited-state cap (default 2000000)\n"
        "  --trace-out PATH     write the counterexample trace to PATH\n"
        "  --quiet              print verdict lines only\n";
}

struct Args {
  check::PolicyCheckConfig cfg;
  check::ExploreOptions opts;
  std::string trace_out;
  bool quiet = false;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg == "--nodes") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.nodes = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--pages") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.pages_per_node = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--frames") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.pool_frames = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--touches") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.touches = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--daemon-runs") {
      const char* v = value();
      if (v == nullptr) return false;
      a->cfg.daemon_runs = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--mutation") {
      const char* v = value();
      if (v == nullptr) return false;
      if (!check::parse_policy_mutation(v, &a->cfg.mutation)) {
        std::cerr << "unknown mutation: " << v << "\n";
        return false;
      }
    } else if (arg == "--dfs") {
      a->opts.dfs = true;
    } else if (arg == "--full-interleaving") {
      a->cfg.ordered = false;
    } else if (arg == "--max-states") {
      const char* v = value();
      if (v == nullptr) return false;
      a->opts.max_states = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return false;
      a->trace_out = v;
    } else if (arg == "--quiet") {
      a->quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, &a)) {
    usage(std::cerr);
    return 2;
  }

  const check::PolicyModel model(a.cfg);
  const check::ExploreResult res = check::explore_model(model, a.opts);

  std::cout << "[ascoma-policy] nodes=" << a.cfg.nodes
            << " pages=" << a.cfg.pages_per_node
            << " frames=" << a.cfg.pool_frames
            << " touches=" << a.cfg.touches
            << " daemon-runs=" << a.cfg.daemon_runs
            << " mutation=" << check::to_string(a.cfg.mutation) << "\n";
  if (a.quiet) {
    std::cout << (res.ok ? (res.truncated ? "INCONCLUSIVE" : "PASS")
                         : "VIOLATION")
              << ": " << res.states << " states\n";
    if (!res.ok) std::cout << "  " << res.violation << "\n";
  } else {
    std::cout << res.report();
  }

  if (!res.ok && !a.trace_out.empty()) {
    std::ofstream out(a.trace_out);
    if (!out) {
      std::cerr << "cannot write " << a.trace_out << "\n";
      return 2;
    }
    out << "ascoma_policycheck counterexample\n"
        << "nodes=" << a.cfg.nodes << " pages=" << a.cfg.pages_per_node
        << " frames=" << a.cfg.pool_frames << " touches=" << a.cfg.touches
        << " daemon-runs=" << a.cfg.daemon_runs
        << " mutation=" << check::to_string(a.cfg.mutation) << "\n\n"
        << res.report();
    std::cout << "counterexample written to " << a.trace_out << "\n";
  }

  if (!res.ok) return 1;
  return res.truncated ? 2 : 0;
}
