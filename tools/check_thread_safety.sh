#!/usr/bin/env bash
# Negative-compile check for the concurrency fence (ARCHITECTURE.md §18,
# src/common/sync.hh, tests/test_sync.cc).
#
# The annotated primitives are only worth anything if clang actually
# rejects a violation: this script compiles a snippet that reads an
# ASCOMA_GUARDED_BY field without the lock and asserts that it FAILS
# under `clang++ -Wthread-safety -Werror` — for the thread-safety reason,
# not some unrelated error — then compiles the corrected snippet and
# asserts that it passes.  A silent pass of the violating snippet means
# the attributes have rotted into no-ops on clang and the fence is dead.
#
# Exit codes: 0 checks pass (or no clang++ available — the attributes are
# defined away off-clang, so there is nothing to check), 1 fence broken.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-clang++}"
if ! command -v "$CXX" >/dev/null 2>&1 ||
   ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "check_thread_safety: no clang++ on PATH; attributes compile away" \
       "elsewhere — skipping (CI runs this with clang installed)"
  exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The violation: jobs_done is guarded, read_unlocked() touches it bare.
cat > "$tmp/violation.cc" <<'EOF'
#include "common/sync.hh"
struct Board {
  mutable ascoma::Mutex mu;
  int jobs_done ASCOMA_GUARDED_BY(mu) = 0;
  int read_unlocked() const { return jobs_done; }  // must NOT compile
};
int main() {
  Board b;
  return b.read_unlocked();
}
EOF

# The fix: identical shape, read under a LockGuard.
cat > "$tmp/corrected.cc" <<'EOF'
#include "common/sync.hh"
struct Board {
  mutable ascoma::Mutex mu;
  int jobs_done ASCOMA_GUARDED_BY(mu) = 0;
  int read_locked() const {
    ascoma::LockGuard lock(mu);
    return jobs_done;
  }
};
int main() {
  Board b;
  return b.read_locked();
}
EOF

flags=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror)

if "$CXX" "${flags[@]}" "$tmp/violation.cc" 2> "$tmp/violation.log"; then
  echo "FAIL: the GUARDED_BY violation compiled clean under" \
       "-Wthread-safety -Werror — the annotations are not biting"
  exit 1
fi
if ! grep -q "thread-safety" "$tmp/violation.log"; then
  echo "FAIL: the violation snippet was rejected for the wrong reason:"
  cat "$tmp/violation.log"
  exit 1
fi

if ! "$CXX" "${flags[@]}" "$tmp/corrected.cc" 2> "$tmp/corrected.log"; then
  echo "FAIL: the corrected snippet does not compile:"
  cat "$tmp/corrected.log"
  exit 1
fi

echo "check_thread_safety: OK — GUARDED_BY violation rejected" \
     "([-Wthread-safety]), corrected snippet accepted"
