#!/usr/bin/env python3
"""Prometheus text-exposition (0.0.4) grammar validator for obsd scrapes.

CI's obsd job boots a served sweep, scrapes `GET /metrics`, and feeds the
body through this linter; tests and humans can do the same with any saved
scrape.  Checks, over the exposition text alone:

1. Line grammar: every line is a `# HELP <name> <text>`, a
   `# TYPE <name> counter|gauge|histogram|summary|untyped`, or a sample
   `name{label="value",...} <number>`; metric and label names match
   `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels without the ':'), label values use
   only the `\\\\ \\" \\n` escapes, and the text ends with a newline.

2. Family structure: HELP/TYPE appear at most once per family, TYPE before
   the family's first sample, families are sorted by name and never
   interleaved, and counter sample names end in `_total`.

3. Histogram invariants: `_bucket` samples carry an `le` label with
   non-decreasing cumulative counts, the final bucket is `le="+Inf"`, its
   value equals `_count`, and `_sum`/`_count` are both present.

Usage: tools/lint_metrics.py [file ...]   (stdin when no file; exit 0 clean,
       1 findings)
       tools/lint_metrics.py --self-test  (run the built-in fixture suite)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from lint_common import run_text_fixtures

METRIC_NAME = "name"
LABEL_NAME = "label"

SAMPLE_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def valid_name(name: str, kind: str = METRIC_NAME) -> bool:
    if not name:
        return False
    extra = ":" if kind == METRIC_NAME else ""
    first = name[0]
    if not (first.isalpha() or first == "_" or first in extra):
        return False
    return all(c.isalnum() or c == "_" or c in extra for c in name[1:])


def valid_number(text: str) -> bool:
    if text in ("+Inf", "-Inf", "NaN"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def parse_labels(raw: str, where: str, findings: list[str]) -> dict:
    """Parse `a="b",c="d"` (the text between '{' and '}')."""
    labels = {}
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0 or eq + 1 >= len(raw) or raw[eq + 1] != '"':
            findings.append(f"{where}: malformed label pair in {{{raw}}}")
            return labels
        name = raw[i:eq]
        if not valid_name(name, LABEL_NAME):
            findings.append(f"{where}: bad label name '{name}'")
        j = eq + 2
        value = []
        closed = False
        while j < len(raw):
            c = raw[j]
            if c == "\\":
                if j + 1 >= len(raw) or raw[j + 1] not in ('\\', '"', 'n'):
                    findings.append(f"{where}: bad escape in label '{name}'")
                    return labels
                value.append(raw[j + 1])
                j += 2
            elif c == '"':
                closed = True
                j += 1
                break
            else:
                value.append(c)
                j += 1
        if not closed:
            findings.append(f"{where}: unterminated label value for '{name}'")
            return labels
        if name in labels:
            findings.append(f"{where}: duplicate label '{name}'")
        labels[name] = "".join(value)
        if j < len(raw):
            if raw[j] != ",":
                findings.append(f"{where}: expected ',' after label '{name}'")
                return labels
            j += 1
        i = j
    return labels


class Sample:
    def __init__(self, name: str, labels: dict, value: str):
        self.name = name
        self.labels = labels
        self.value = value


def family_of(sample_name: str) -> str:
    """The family a sample belongs to (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def check_histogram(name: str, samples: list, findings: list[str]) -> None:
    buckets = [s for s in samples if s.name == name + "_bucket"]
    counts = [s for s in samples if s.name == name + "_count"]
    sums = [s for s in samples if s.name == name + "_sum"]
    if len(counts) != 1 or len(sums) != 1:
        findings.append(f"histogram {name}: needs exactly one _count and _sum")
        return
    if not buckets:
        findings.append(f"histogram {name}: no _bucket samples")
        return
    prev = -1.0
    prev_le = None
    for b in buckets:
        le = b.labels.get("le")
        if le is None:
            findings.append(f"histogram {name}: _bucket without le label")
            return
        if prev_le == "+Inf":
            findings.append(f"histogram {name}: bucket after le=\"+Inf\"")
        cur = float(b.value)
        if cur < prev:
            findings.append(
                f"histogram {name}: non-cumulative bucket le=\"{le}\"")
        prev, prev_le = cur, le
    if prev_le != "+Inf":
        findings.append(f"histogram {name}: last bucket is not le=\"+Inf\"")
    elif float(buckets[-1].value) != float(counts[0].value):
        findings.append(f"histogram {name}: le=\"+Inf\" != _count")


def lint_exposition(text: str) -> list[str]:
    findings: list[str] = []
    if text and not text.endswith("\n"):
        findings.append("exposition does not end with a newline")

    helps: set[str] = set()
    types: dict[str, str] = {}
    family_order: list[str] = []       # first-appearance order of families
    sampled: set[str] = set()          # families that already emitted samples
    samples: dict[str, list] = {}

    def touch(family: str, where: str) -> None:
        if family not in family_order:
            if family_order and family < family_order[-1]:
                findings.append(
                    f"{where}: family '{family}' out of sorted order "
                    f"(after '{family_order[-1]}')")
            family_order.append(family)
        elif family != family_order[-1]:
            findings.append(f"{where}: family '{family}' interleaved")

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line:
            findings.append(f"{where}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                findings.append(f"{where}: malformed comment '{line}'")
                continue
            _, keyword, name = parts[0], parts[1], parts[2]
            if not valid_name(name):
                findings.append(f"{where}: bad metric name '{name}'")
                continue
            touch(name, where)
            if keyword == "HELP":
                if name in helps:
                    findings.append(f"{where}: duplicate HELP for '{name}'")
                helps.add(name)
            else:
                mtype = parts[3] if len(parts) > 3 else ""
                if mtype not in SAMPLE_TYPES:
                    findings.append(f"{where}: bad TYPE '{mtype}' for '{name}'")
                if name in types:
                    findings.append(f"{where}: duplicate TYPE for '{name}'")
                if name in sampled:
                    findings.append(
                        f"{where}: TYPE for '{name}' after its samples")
                types[name] = mtype
            continue

        # A sample line: name[{labels}] value
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                findings.append(f"{where}: unbalanced braces")
                continue
            name = line[:brace]
            labels = parse_labels(line[brace + 1:close], where, findings)
            rest = line[close + 1:].strip()
        else:
            name, _, rest = line.partition(" ")
            labels = {}
            rest = rest.strip()
        value = rest.split(" ")[0]  # an optional timestamp may follow
        if not valid_name(name):
            findings.append(f"{where}: bad sample name '{name}'")
            continue
        if not valid_number(value):
            findings.append(f"{where}: bad sample value '{value}'")
            continue
        family = family_of(name)
        if family not in types:
            family = name  # _sum/_count/_bucket of an undeclared family
        touch(family, where)
        sampled.add(family)
        if types.get(family) == "counter" and not name.endswith("_total"):
            findings.append(
                f"{where}: counter sample '{name}' does not end in _total")
        samples.setdefault(family, []).append(Sample(name, labels, value))

    for family, mtype in types.items():
        if mtype == "histogram" and family in samples:
            check_histogram(family, samples[family], findings)
    return findings


# ---------------------------------------------------------------------------
# Self-test fixtures: each is (name, exposition text, expects-findings).

GOOD = """\
# HELP ascoma_a_gauge live value
# TYPE ascoma_a_gauge gauge
ascoma_a_gauge 7
# HELP ascoma_m_ns latency
# TYPE ascoma_m_ns histogram
ascoma_m_ns_bucket{le="1"} 2
ascoma_m_ns_bucket{le="+Inf"} 3
ascoma_m_ns_sum 302
ascoma_m_ns_count 3
# HELP ascoma_z_total jobs
# TYPE ascoma_z_total counter
ascoma_z_total{state="done",node="0"} 9
ascoma_z_total{state="esc\\"a\\\\b\\nc"} 1
"""

SELF_TESTS = [
    ("clean exposition", GOOD, False),
    ("no trailing newline", "# HELP a_total h\n# TYPE a_total counter\na_total 1", True),
    ("unsorted families",
     "# TYPE z_total counter\nz_total 1\n# TYPE a_gauge gauge\na_gauge 1\n",
     True),
    ("interleaved families",
     "# TYPE a_gauge gauge\na_gauge 1\n# TYPE b_gauge gauge\nb_gauge 1\n"
     "a_gauge 2\n", True),
    ("duplicate HELP",
     "# HELP a_gauge x\n# HELP a_gauge y\n# TYPE a_gauge gauge\na_gauge 1\n",
     True),
    ("TYPE after samples", "a_gauge 1\n# TYPE a_gauge gauge\n", True),
    ("bad metric name", "# TYPE 9bad counter\n9bad 1\n", True),
    ("bad label escape",
     '# TYPE a_gauge gauge\na_gauge{l="x\\q"} 1\n', True),
    ("unterminated label value",
     '# TYPE a_gauge gauge\na_gauge{l="x} 1\n', True),
    ("counter without _total", "# TYPE a_jobs counter\na_jobs 1\n", True),
    ("bad value", "# TYPE a_gauge gauge\na_gauge seven\n", True),
    ("non-cumulative histogram",
     "# TYPE h_ns histogram\nh_ns_bucket{le=\"1\"} 5\n"
     "h_ns_bucket{le=\"+Inf\"} 3\nh_ns_sum 1\nh_ns_count 3\n", True),
    ("missing +Inf bucket",
     "# TYPE h_ns histogram\nh_ns_bucket{le=\"1\"} 1\nh_ns_sum 1\n"
     "h_ns_count 1\n", True),
    ("+Inf != count",
     "# TYPE h_ns histogram\nh_ns_bucket{le=\"+Inf\"} 2\nh_ns_sum 1\n"
     "h_ns_count 3\n", True),
]


def self_test() -> int:
    return run_text_fixtures("lint_metrics", SELF_TESTS, lint_exposition)


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--self-test":
        return self_test()
    texts = ([Path(p).read_text() for p in argv]
             if argv else [sys.stdin.read()])
    total = 0
    for src, text in zip(argv or ["<stdin>"], texts):
        findings = lint_exposition(text)
        for f in findings:
            print(f"{src}: {f}")
        total += len(findings)
    if total:
        print(f"lint_metrics: {total} finding(s)")
        return 1
    print("lint_metrics: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
